"""Parallel planning sweeps over (devices, vocab, microbatch, budget) grids.

A sweep answers the question the planner's single-config API cannot:
*where* in the hardware/workload space does each schedule family win?
Each grid point is planned independently, so the sweep parallelizes
with :mod:`concurrent.futures` — ``executor="process"`` for real
multi-core speedup (the planner is pure Python), ``"thread"`` when
worker processes are unavailable (sandboxes, pytest-cov), or
``"serial"`` for debugging.  Worker failures fall back to serial
execution rather than failing the sweep.

Grid points are submitted to the pool in *chunks* rather than one
future per point: every process-pool task pays a fixed cost (pickling
the constraints and the worker closure, queue round-trips), which for
small per-point work dominated the sweep.  ``chunk_size`` controls the
batching; the default targets a few chunks per worker so load still
balances.
"""

from __future__ import annotations

import functools
import itertools
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.harness.settings import TABLE1_SHAPES, TABLE2_SHAPES
from repro.planner.cache import PlanCache
from repro.planner.planner import PlannerConstraints, RankedPlans, plan


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a planning sweep."""

    devices: int
    vocab_size: int
    seq_length: int = 2048
    num_microbatches: int = 128
    memory_budget_gib: float | None = None


@dataclass
class SweepOutcome:
    """The ranked plans produced for one grid point."""

    point: SweepPoint
    plans: RankedPlans

    @property
    def best_method(self) -> str | None:
        """Winning family, or ``None`` when nothing fit the budget."""
        return self.plans.best.method if self.plans.ranked else None


def model_for_devices(
    devices: int, seq_length: int, vocab_size: int
) -> ModelConfig:
    """A proportionally-sized model for an arbitrary device count.

    Uses the paper's Table 1 shape when the device count matches one
    (8/16/32 GPUs), the Table 2 shape for its extra count (24 GPUs),
    and otherwise a generic 4-layers-per-device GPT shape so that both
    the 1F1B family (``L % p == 0``) and the V-Half family
    (``L % 2p == 0``) stay feasible.
    """
    if devices in TABLE1_SHAPES:
        layers, heads, hidden = TABLE1_SHAPES[devices]
    elif devices in TABLE2_SHAPES:
        layers, heads, hidden = TABLE2_SHAPES[devices]
    else:
        layers, heads, hidden = 4 * devices, 16, 2048
    return ModelConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        seq_length=seq_length,
        vocab_size=vocab_size,
    )


def grid(
    devices: Sequence[int],
    vocab_sizes: Sequence[int],
    seq_lengths: Sequence[int] = (2048,),
    microbatches: Sequence[int] = (128,),
    memory_budgets_gib: Sequence[float | None] = (None,),
) -> list[SweepPoint]:
    """Cartesian product of the sweep axes, in deterministic order."""
    return [
        SweepPoint(d, v, s, m, b)
        for d, v, s, m, b in itertools.product(
            devices, vocab_sizes, seq_lengths, microbatches, memory_budgets_gib
        )
    ]


def plan_point(
    point: SweepPoint,
    constraints: PlannerConstraints | None = None,
    cache_dir: str | None = None,
) -> SweepOutcome:
    """Plan one grid point (top-level so process pools can pickle it).

    ``cache_dir`` names a disk-backed :class:`~repro.planner.cache.PlanCache`
    directory, letting repeated CLI invocations and pool workers share
    results across processes.
    """
    base = constraints or PlannerConstraints()
    model = model_for_devices(point.devices, point.seq_length, point.vocab_size)
    parallel = ParallelConfig(
        pipeline_size=point.devices,
        num_microbatches=point.num_microbatches,
        microbatch_size=1,
    )
    if point.memory_budget_gib is not None:
        import dataclasses

        base = dataclasses.replace(
            base, memory_budget_gib=point.memory_budget_gib
        )
    cache = PlanCache(cache_dir) if cache_dir is not None else None
    return SweepOutcome(point=point, plans=plan(model, parallel, base, cache=cache))


def plan_points(
    points: Sequence[SweepPoint],
    constraints: PlannerConstraints | None = None,
    cache_dir: str | None = None,
) -> list[SweepOutcome]:
    """Plan a chunk of grid points serially (one pool task per chunk).

    Top-level so process pools can pickle it; the per-task fixed cost
    (constraint pickling, queue round-trips) is paid once per chunk
    instead of once per point.
    """
    return [plan_point(point, constraints, cache_dir) for point in points]


def default_chunk_size(num_points: int, workers: int) -> int:
    """Points per pool task: ~4 chunks per worker, at least 1 point.

    Large enough that small sweeps stop paying per-task process-pool
    overhead, small enough that stragglers still rebalance across the
    pool.
    """
    return max(1, -(-num_points // (4 * max(1, workers))))


def sweep(
    points: Iterable[SweepPoint],
    constraints: PlannerConstraints | None = None,
    *,
    executor: str = "process",
    max_workers: int | None = None,
    cache_dir: str | None = None,
    chunk_size: int | None = None,
) -> list[SweepOutcome]:
    """Plan every grid point, in parallel, preserving input order.

    ``executor`` selects the :mod:`concurrent.futures` backend:
    ``"process"`` (default), ``"thread"`` or ``"serial"``.  If the
    chosen pool cannot be started or dies mid-sweep (restricted
    environments), results gathered so far are kept and only the
    missing points are re-planned serially in-process.  ``cache_dir``
    enables a shared disk-backed plan cache across workers and runs.
    ``chunk_size`` batches grid points per pool task
    (:func:`default_chunk_size` when ``None``); ``1`` restores the old
    one-future-per-point submission.
    """
    points = list(points)
    if executor not in ("process", "thread", "serial"):
        raise ValueError(
            f"executor must be 'process', 'thread' or 'serial', got {executor!r}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
    worker = functools.partial(
        plan_point, constraints=constraints, cache_dir=cache_dir
    )
    if executor == "serial" or len(points) <= 1:
        return [worker(point) for point in points]
    if chunk_size is None:
        cpus = os.cpu_count() or 1
        # Match each pool's actual default sizing so chunks balance:
        # ThreadPoolExecutor defaults to min(32, cpus + 4) workers.
        pool_default = min(32, cpus + 4) if executor == "thread" else cpus
        workers = max_workers or pool_default
        chunk_size = default_chunk_size(len(points), workers)
    chunks = [points[i : i + chunk_size] for i in range(0, len(points), chunk_size)]
    chunk_worker = functools.partial(
        plan_points, constraints=constraints, cache_dir=cache_dir
    )
    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    try:
        pool = pool_cls(max_workers=max_workers)
    except (OSError, RuntimeError):
        # Pools are unavailable in some sandboxes; degrade gracefully.
        return [worker(point) for point in points]
    completed: dict[int, list[SweepOutcome]] = {}
    with pool:
        futures = []
        try:
            for chunk in chunks:
                futures.append(pool.submit(chunk_worker, chunk))
        except BrokenExecutor:
            pass
        for index, future in enumerate(futures):
            try:
                completed[index] = future.result()
            except BrokenExecutor:
                # The pool died mid-sweep; keep every future that did
                # finish and plan the rest serially below.  Genuine
                # worker exceptions (a planner bug) propagate with
                # their original traceback instead.
                continue
    for index, chunk in enumerate(chunks):
        if index not in completed:
            completed[index] = [worker(point) for point in chunk]
    return [
        outcome
        for index in range(len(chunks))
        for outcome in completed[index]
    ]


def best_method_table(outcomes: Sequence[SweepOutcome]) -> str:
    """ASCII summary: the winning family at every grid point."""
    from repro.harness.tables import format_table

    rows: list[list[object]] = []
    for outcome in outcomes:
        plans = outcome.plans
        best = plans.best if plans.ranked else None
        rows.append(
            [
                outcome.point.devices,
                f"{outcome.point.vocab_size // 1024}k",
                outcome.point.seq_length,
                outcome.point.num_microbatches,
                round(plans.memory_budget_gib, 1),
                "(none fits)" if best is None else best.method,
                None if best is None or best.iteration_time is None
                else round(best.iteration_time, 3),
                None if best is None or best.mfu is None
                else round(100.0 * best.mfu, 2),
            ]
        )
    return format_table(
        ["devices", "vocab", "seq", "m", "budgetGB", "best", "time(s)", "MFU%"],
        rows,
        title="Planner sweep — winning schedule family per grid point",
    )
