"""Parallel planning sweeps over (devices, vocab, microbatch, budget) grids.

A sweep answers the question the planner's single-config API cannot:
*where* in the hardware/workload space does each schedule family win?
Each grid point is planned independently, so the sweep parallelizes
with :mod:`concurrent.futures` — ``executor="process"`` for real
multi-core speedup (the planner is pure Python), ``"thread"`` when
worker processes are unavailable (sandboxes, pytest-cov), or
``"serial"`` for debugging.  Pools are created once per
(executor, max_workers) pairing and kept alive across :func:`sweep`
calls, so repeated sweeps stop paying worker spawn + interpreter
warmup.  If a pool dies mid-sweep the missing points are re-planned
serially; the failure is logged (``warnings`` + module logger) and
surfaced on the affected outcomes' ``fallback_reason``.

Grid points are submitted to the pool in *chunks* rather than one
future per point: every process-pool task pays a fixed cost (pickling
the constraints and the worker closure, queue round-trips), which for
small per-point work dominated the sweep.  ``chunk_size`` controls the
batching; the default targets a few chunks per worker so load still
balances.

Before chunking, points are grouped by their **structural signature**
(devices, vocabulary, sequence length, microbatches — everything that
shapes the generated schedules, as opposed to the memory budget and
``pass_overhead`` bindings that only re-price or re-rank them).  Points
sharing a structure land in the same chunk, so one worker builds each
schedule structure once and every sibling point re-uses it through the
process-wide structural caches and the planner's budget-independent
estimate/metrics entries.  Groups that span several ``pass_overhead``
bindings are additionally pre-priced as one batch: one compiled graph
per method, executed for all bindings in a single
:meth:`~repro.sim.compiled.CompiledGraph.execute_many` pass.
"""

from __future__ import annotations

import atexit
import dataclasses
import functools
import itertools
import logging
import os
import warnings
from collections.abc import Iterable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.memory import MemoryModel
from repro.harness.experiments import (
    KNOWN_METHODS,
    generate_method_schedule,
    run_method_bindings,
)
from repro.harness.settings import TABLE1_SHAPES, TABLE2_SHAPES
from repro.planner.cache import PlanCache
from repro.planner.estimate import estimate_method, infeasibility_reason
from repro.costmodel.calibrate import resolve_cost_model
from repro.planner.planner import (
    PlannerConstraints,
    RankedPlans,
    _estimate_digest,
    _metrics_digest,
    default_plan_cache,
    plan,
)
from repro.sim import SimulationSetup

logger = logging.getLogger(__name__)

#: Default memory model matching plan()'s (frozen dataclass → equal
#: digests for equal field values).
_DEFAULT_MEMORY_MODEL = MemoryModel()


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a planning sweep.

    ``devices``, ``vocab_size``, ``seq_length`` and
    ``num_microbatches`` shape the schedule *structures*;
    ``memory_budget_gib`` and ``pass_overhead`` are pure re-pricing /
    re-ranking knobs — points differing only in those share every
    generated schedule and compiled graph.  ``scenario`` sits in
    between: it re-prices runtimes *and* can change generated
    structures (interconnect tiers enter the generators' timing
    scalars), so it counts as a structure axis.
    """

    devices: int
    vocab_size: int
    seq_length: int = 2048
    num_microbatches: int = 128
    memory_budget_gib: float | None = None
    #: Per-pass host overhead binding (``None`` = the setup default);
    #: sweeping it explores the §7 overhead ablation without rebuilding
    #: schedule structures.
    pass_overhead: float | None = None
    #: Registered cluster-scenario name (``None`` = nominal cluster);
    #: see :mod:`repro.scenarios.registry`.  A name rather than a
    #: :class:`~repro.scenarios.cluster.ClusterScenario` keeps points
    #: hashable and process-pool picklable.
    scenario: str | None = None

    def structure_axes(self) -> tuple:
        """The axes that determine schedule structure (not bindings).

        The nominal cluster renders as ``""`` so the tuple stays
        totally ordered (the sweep sorts points by it for grouping).
        """
        return (
            self.devices,
            self.vocab_size,
            self.seq_length,
            self.num_microbatches,
            self.scenario or "",
        )


@dataclass
class SweepOutcome:
    """The ranked plans produced for one grid point."""

    point: SweepPoint
    plans: RankedPlans
    #: Why this point was re-planned serially in-process (a worker-pool
    #: failure), or ``None`` when it was planned as submitted.
    fallback_reason: str | None = None

    @property
    def best_method(self) -> str | None:
        """Winning family, or ``None`` when nothing fit the budget."""
        return self.plans.best.method if self.plans.ranked else None


def model_for_devices(
    devices: int, seq_length: int, vocab_size: int
) -> ModelConfig:
    """A proportionally-sized model for an arbitrary device count.

    Uses the paper's Table 1 shape when the device count matches one
    (8/16/32 GPUs), the Table 2 shape for its extra count (24 GPUs),
    and otherwise a generic 4-layers-per-device GPT shape so that both
    the 1F1B family (``L % p == 0``) and the V-Half family
    (``L % 2p == 0``) stay feasible.
    """
    if devices in TABLE1_SHAPES:
        layers, heads, hidden = TABLE1_SHAPES[devices]
    elif devices in TABLE2_SHAPES:
        layers, heads, hidden = TABLE2_SHAPES[devices]
    else:
        layers, heads, hidden = 4 * devices, 16, 2048
    return ModelConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        seq_length=seq_length,
        vocab_size=vocab_size,
    )


def grid(
    devices: Sequence[int],
    vocab_sizes: Sequence[int],
    seq_lengths: Sequence[int] = (2048,),
    microbatches: Sequence[int] = (128,),
    memory_budgets_gib: Sequence[float | None] = (None,),
    pass_overheads: Sequence[float | None] = (None,),
    scenarios: Sequence[str | None] = (None,),
) -> list[SweepPoint]:
    """Cartesian product of the sweep axes, in deterministic order.

    ``scenarios`` takes registered cluster-scenario *names*
    (:mod:`repro.scenarios.registry`); ``None`` is the nominal
    homogeneous cluster.
    """
    return [
        SweepPoint(d, v, s, m, b, o, c)
        for d, v, s, m, b, o, c in itertools.product(
            devices,
            vocab_sizes,
            seq_lengths,
            microbatches,
            memory_budgets_gib,
            pass_overheads,
            scenarios,
        )
    ]


def _point_configs(point: SweepPoint) -> tuple[ModelConfig, ParallelConfig]:
    """Model/parallel configuration of one grid point."""
    model = model_for_devices(point.devices, point.seq_length, point.vocab_size)
    parallel = ParallelConfig(
        pipeline_size=point.devices,
        num_microbatches=point.num_microbatches,
        microbatch_size=1,
    )
    return model, parallel


def plan_point(
    point: SweepPoint,
    constraints: PlannerConstraints | None = None,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
) -> SweepOutcome:
    """Plan one grid point (top-level so process pools can pickle it).

    ``cache_dir`` names a disk-backed :class:`~repro.planner.cache.PlanCache`
    directory, letting repeated CLI invocations and pool workers share
    results across processes; ``cache_max_entries`` bounds it (the
    planning service's knob — long-running writers must not grow the
    directory without limit).
    """
    base = constraints or PlannerConstraints()
    model, parallel = _point_configs(point)
    if point.memory_budget_gib is not None:
        base = dataclasses.replace(
            base, memory_budget_gib=point.memory_budget_gib
        )
    cache = (
        PlanCache(cache_dir, max_entries=cache_max_entries)
        if cache_dir is not None
        else None
    )
    return SweepOutcome(
        point=point,
        plans=plan(
            model,
            parallel,
            base,
            cache=cache,
            pass_overhead=point.pass_overhead,
            scenario=point.scenario,
        ),
    )


def _warm_binding_groups(
    points: Sequence[SweepPoint],
    constraints: PlannerConstraints | None,
    cache_dir: str | None,
    cache_max_entries: int | None = None,
) -> None:
    """Batch-price structure groups that span several runtime bindings.

    Points sharing :meth:`SweepPoint.structure_axes` but carrying
    different ``pass_overhead`` bindings need the *same* schedule
    structures simulated under K different duration vectors.  For each
    such group this pre-seeds the planner's budget-independent
    estimate/metrics cache entries: per likely-top-k method, one
    compiled graph priced for all K bindings in a single
    :meth:`~repro.sim.compiled.CompiledGraph.execute_many` batch
    (methods that want order refinement fall back to per-binding
    simulation inside :func:`~repro.harness.experiments.run_method_bindings`).

    Purely an optimization: a method this pass misses (e.g. a
    borderline-memory candidate beyond top-k) is simulated on demand by
    :func:`~repro.planner.planner.plan`, with identical results.
    """
    base = constraints or PlannerConstraints()
    if base.simulate_top_k == 0:
        return
    cache = (
        PlanCache(cache_dir, max_entries=cache_max_entries)
        if cache_dir is not None
        else default_plan_cache()
    )
    groups: dict[tuple, list[SweepPoint]] = {}
    for point in points:
        groups.setdefault(point.structure_axes(), []).append(point)
    for group in groups.values():
        if group[0].scenario is not None:
            # The warm-up prices *nominal* runtimes; a scenario point
            # only reads scenario-keyed metrics entries, so pre-seeding
            # here would be wasted work.  plan() still shares its
            # budget-independent aux entries across the scenario group.
            continue
        overheads = list(dict.fromkeys(p.pass_overhead for p in group))
        if len(overheads) < 2:
            continue
        model, parallel = _point_configs(group[0])
        setups = [
            SimulationSetup(
                model,
                parallel,
                **({} if overhead is None else {"pass_overhead": overhead}),
            )
            for overhead in overheads
        ]
        methods = base.methods or KNOWN_METHODS
        feasible = [
            m for m in methods
            if infeasibility_reason(m, model, parallel) is None
        ]
        cost_model = resolve_cost_model(base.cost_model)
        cost_model_digest = cost_model.digest()
        warm: set[str] = set()
        for setup, overhead in zip(setups, overheads):
            ranked = []
            for method in feasible:
                est_key = _estimate_digest(
                    method, model, parallel, setup.hardware,
                    _DEFAULT_MEMORY_MODEL, overhead, cost_model_digest,
                )
                est = cache.get_aux("estimate", est_key)
                if est is None:
                    est = estimate_method(
                        method, setup, _DEFAULT_MEMORY_MODEL, cost_model
                    )
                    cache.put_aux("estimate", est_key, est)
                ranked.append((est.iteration_time, method))
            ranked.sort()
            top_k = (
                len(ranked)
                if base.simulate_top_k is None
                else min(base.simulate_top_k, len(ranked))
            )
            warm.update(method for _, method in ranked[:top_k])
        for method in sorted(warm):
            metrics_rows = run_method_bindings(
                method, model, parallel, setups, refine=base.refine
            )
            for setup, overhead, metrics in zip(setups, overheads, metrics_rows):
                signature = generate_method_schedule(
                    method, setup
                ).structure_signature()
                sim_key = _metrics_digest(
                    method, signature, model, parallel, setup.hardware,
                    _DEFAULT_MEMORY_MODEL, overhead, base.refine,
                )
                cache.put_aux(
                    "metrics",
                    sim_key,
                    dataclasses.replace(
                        metrics,
                        per_device_peak_gb=list(metrics.per_device_peak_gb),
                    ),
                )


def plan_points(
    points: Sequence[SweepPoint],
    constraints: PlannerConstraints | None = None,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
) -> list[SweepOutcome]:
    """Plan a chunk of grid points serially (one pool task per chunk).

    Top-level so process pools can pickle it; the per-task fixed cost
    (constraint pickling, queue round-trips) is paid once per chunk
    instead of once per point.  Structure groups spanning several
    runtime bindings inside the chunk are batch-priced first
    (:func:`_warm_binding_groups`), then every point is planned against
    the warmed caches.
    """
    _warm_binding_groups(points, constraints, cache_dir, cache_max_entries)
    return [
        plan_point(point, constraints, cache_dir, cache_max_entries)
        for point in points
    ]


def default_chunk_size(num_points: int, workers: int) -> int:
    """Points per pool task: ~4 chunks per worker, at least 1 point.

    Large enough that small sweeps stop paying per-task process-pool
    overhead, small enough that stragglers still rebalance across the
    pool.
    """
    return max(1, -(-num_points // (4 * max(1, workers))))


# ---------------------------------------------------------------------------
# Persistent worker pools (shared across sweep() calls).
# ---------------------------------------------------------------------------

_POOLS: dict[tuple[str, int | None], Executor] = {}


def _get_pool(executor: str, max_workers: int | None) -> Executor | None:
    """The persistent pool for this configuration, or ``None``.

    Pools are created lazily, kept across :func:`sweep` calls (worker
    spawn + module import is the dominant fixed cost of small process
    sweeps) and torn down at interpreter exit.  ``None`` means the pool
    could not be created (restricted sandboxes).
    """
    key = (executor, max_workers)
    pool = _POOLS.get(key)
    if pool is not None:
        return pool
    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    try:
        pool = pool_cls(max_workers=max_workers)
    except (OSError, RuntimeError):
        return None
    _POOLS[key] = pool
    return pool


def get_pool(executor: str, max_workers: int | None = None) -> Executor | None:
    """The persistent worker pool for this configuration, or ``None``.

    Public accessor over the module's pool registry: the planning
    service (:mod:`repro.service`) schedules CPU-bound plan requests on
    the same persistent pools sweeps use, so per-worker structural and
    plan caches stay warm across requests *and* sweeps.  ``None`` means
    a pool cannot be created in this environment (callers degrade to
    threads or serial execution).
    """
    if executor not in ("process", "thread"):
        raise ValueError(
            f"executor must be 'process' or 'thread', got {executor!r}"
        )
    return _get_pool(executor, max_workers)


def discard_pool(executor: str, max_workers: int | None = None) -> None:
    """Forget (and best-effort shut down) one persistent pool.

    For callers that detect a broken pool mid-flight (the service's
    degraded mode); the next :func:`get_pool` call builds a fresh one.
    """
    _discard_pool(executor, max_workers)


def respawn_pool(executor: str, max_workers: int | None = None):
    """Discard any existing pool for this configuration and build fresh.

    The resurrection path of the service's circuit breaker: a probe
    must never reuse a possibly-broken cached pool object, so it
    discards first and returns the newly built pool (or ``None`` when
    one cannot be created in this environment).
    """
    _discard_pool(executor, max_workers)
    return get_pool(executor, max_workers)


def _discard_pool(executor: str, max_workers: int | None) -> None:
    """Forget (and best-effort shut down) a broken persistent pool."""
    pool = _POOLS.pop((executor, max_workers), None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass


def shutdown_pools() -> None:
    """Shut down every persistent sweep pool (atexit; also for tests)."""
    for key in list(_POOLS):
        _discard_pool(*key)


atexit.register(shutdown_pools)


def sweep(
    points: Iterable[SweepPoint],
    constraints: PlannerConstraints | None = None,
    *,
    executor: str = "process",
    max_workers: int | None = None,
    cache_dir: str | None = None,
    cache_max_entries: int | None = None,
    chunk_size: int | None = None,
) -> list[SweepOutcome]:
    """Plan every grid point, in parallel, preserving input order.

    ``executor`` selects the :mod:`concurrent.futures` backend:
    ``"process"`` (default), ``"thread"`` or ``"serial"``.  Worker
    pools persist across calls (see :func:`shutdown_pools`).  If the
    chosen pool cannot be started or dies mid-sweep (restricted
    environments), results gathered so far are kept and only the
    missing points are re-planned serially in-process — the cause is
    logged via :mod:`warnings`/:mod:`logging` and recorded on the
    affected outcomes' ``fallback_reason``.  ``cache_dir`` enables a
    shared disk-backed plan cache across workers and runs.
    ``chunk_size`` batches grid points per pool task
    (:func:`default_chunk_size` when ``None``); ``1`` restores the old
    one-future-per-point submission.

    Grid points are grouped by :meth:`SweepPoint.structure_axes` before
    chunking, so points sharing a schedule structure (differing only in
    memory budget or ``pass_overhead``) are planned by one worker and
    amortize schedule construction, compilation and simulation through
    the structural caches; the output order is the input order
    regardless.
    """
    points = list(points)
    if executor not in ("process", "thread", "serial"):
        raise ValueError(
            f"executor must be 'process', 'thread' or 'serial', got {executor!r}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
    # Stable structural grouping; the (i,) suffix keeps equal-structure
    # points in input order and makes the sort total.
    order = sorted(
        range(len(points)), key=lambda i: points[i].structure_axes() + (i,)
    )
    grouped = [points[i] for i in order]

    def restore(outcomes: list[SweepOutcome]) -> list[SweepOutcome]:
        by_input: list[SweepOutcome | None] = [None] * len(points)
        for position, outcome in zip(order, outcomes):
            by_input[position] = outcome
        return by_input  # type: ignore[return-value]

    if executor == "serial" or len(points) <= 1:
        return restore(
            plan_points(grouped, constraints, cache_dir, cache_max_entries)
        )
    if chunk_size is None:
        cpus = os.cpu_count() or 1
        # Match each pool's actual default sizing so chunks balance:
        # ThreadPoolExecutor defaults to min(32, cpus + 4) workers.
        pool_default = min(32, cpus + 4) if executor == "thread" else cpus
        workers = max_workers or pool_default
        chunk_size = default_chunk_size(len(points), workers)
    chunks = [
        grouped[i : i + chunk_size] for i in range(0, len(grouped), chunk_size)
    ]
    chunk_worker = functools.partial(
        plan_points, constraints=constraints, cache_dir=cache_dir,
        cache_max_entries=cache_max_entries,
    )
    pool = _get_pool(executor, max_workers)
    failure: BaseException | None = None
    completed: dict[int, list[SweepOutcome]] = {}
    if pool is None:
        failure = RuntimeError(
            f"could not start a {executor!r} worker pool in this environment"
        )
    else:
        futures = []
        try:
            for chunk in chunks:
                futures.append(pool.submit(chunk_worker, chunk))
        except BrokenExecutor as exc:
            failure = exc
        for index, future in enumerate(futures):
            try:
                completed[index] = future.result()
            except BrokenExecutor as exc:
                # The pool died mid-sweep; keep every future that did
                # finish and plan the rest serially below.  Genuine
                # worker exceptions (a planner bug) propagate with
                # their original traceback instead.
                failure = exc
                continue
        if failure is not None:
            _discard_pool(executor, max_workers)
    fallback_reason: str | None = None
    if failure is not None:
        fallback_reason = (
            f"{executor} pool failed ({type(failure).__name__}: {failure}); "
            "re-planned serially in-process"
        )
        logger.warning("sweep worker pool failure: %s", fallback_reason)
        warnings.warn(
            f"sweep fell back to serial planning: {fallback_reason}",
            RuntimeWarning,
            stacklevel=2,
        )
    for index, chunk in enumerate(chunks):
        if index not in completed:
            outcomes = plan_points(
                chunk, constraints, cache_dir, cache_max_entries
            )
            for outcome in outcomes:
                outcome.fallback_reason = fallback_reason
            completed[index] = outcomes
    return restore(
        [
            outcome
            for index in range(len(chunks))
            for outcome in completed[index]
        ]
    )


def best_method_table(outcomes: Sequence[SweepOutcome]) -> str:
    """ASCII summary: the winning family at every grid point."""
    from repro.harness.tables import format_table

    rows: list[list[object]] = []
    for outcome in outcomes:
        plans = outcome.plans
        best = plans.best if plans.ranked else None
        rows.append(
            [
                outcome.point.devices,
                f"{outcome.point.vocab_size // 1024}k",
                outcome.point.seq_length,
                outcome.point.num_microbatches,
                round(plans.memory_budget_gib, 1),
                "(none fits)" if best is None else best.method,
                None if best is None or best.iteration_time is None
                else round(best.iteration_time, 3),
                None if best is None or best.mfu is None
                else round(100.0 * best.mfu, 2),
            ]
        )
    return format_table(
        ["devices", "vocab", "seq", "m", "budgetGB", "best", "time(s)", "MFU%"],
        rows,
        title="Planner sweep — winning schedule family per grid point",
    )
