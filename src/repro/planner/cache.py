"""Plan-result caching keyed on a configuration digest.

A plan is a pure function of its inputs (model shape, parallel config,
constraints, hardware, memory model, the *content digest* of the active
cost-model profile and the planner version), so the cache key is a
SHA-256 over a canonical JSON rendering of all of them.  Carrying the
profile's content digest — not just its name — means a re-fitted
profile under the same name invalidates every dependent plan, estimate
and probe entry instead of aliasing stale prices
(see :meth:`repro.costmodel.calibrate.HardwareProfile.digest`).
Dataclasses are serialized field by field; anything non-JSON falls back
to ``repr``, which is stable for the frozen dataclasses used here.

The default cache is in-memory and process-local.  Passing a
``directory`` additionally persists entries as pickle files named by
digest, so repeated CLI invocations and sweep workers can share
results across processes.

Besides whole-plan entries the cache stores *auxiliary* namespaced
entries (:meth:`PlanCache.get_aux` / :meth:`PlanCache.put_aux`): the
planner keys per-method analytic estimates and simulated metrics on a
**budget-independent** digest that includes the schedule's structural
signature, so neighbouring sweep grid points — same structure,
different memory budget or runtime binding — skip analytic pricing and
simulation entirely and only re-rank.

Disk entries are **crash-safe**: every file is written to a temp path
and atomically renamed into place, and carries a header with the
SHA-256 of its pickle payload, verified on every read.  A corrupt or
truncated entry (a torn write from a crashed process, bit rot, a
concurrent writer's partial state) is *quarantined* — moved into a
``quarantine/`` sidecar directory for post-mortem — and reported as a
miss, so callers recompute instead of crashing or deserializing
garbage.  Pre-checksum files (no header) are still read as legacy raw
pickles and quarantined on any load failure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

from repro import faultinject

#: Header magic of checksummed disk entries.  Files not starting with
#: this are legacy raw pickles (still readable, not verifiable).
_MAGIC = b"RPLC1\n"
#: Name of the sidecar directory corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"


def _canonical(obj: Any) -> Any:
    """Render ``obj`` as JSON-serializable data, deterministically.

    Dataclasses exposing an ``as_dict()`` hook (``ModelConfig``,
    ``ParallelConfig``) are serialized through it; other dataclasses
    field by field.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        as_dict = getattr(obj, "as_dict", None)
        if callable(as_dict):
            fields = as_dict()
        else:
            fields = {
                field.name: getattr(obj, field.name)
                for field in dataclasses.fields(obj)
            }
        rendered = {name: _canonical(value) for name, value in fields.items()}
        rendered["__type__"] = type(obj).__name__
        return rendered
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {
            str(key): _canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return repr(obj)


def config_digest(*parts: Any) -> str:
    """SHA-256 hex digest of an arbitrary tuple of config objects."""
    payload = json.dumps([_canonical(part) for part in parts], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanCache:
    """Digest-keyed store of :class:`~repro.planner.planner.RankedPlans`.

    Hits return the stored object itself (plans are treated as
    immutable once ranked).  ``hits``/``misses`` counters make cache
    behaviour observable in tests and sweeps.  ``max_entries`` bounds
    each entry kind (whole-plan and every aux namespace separately),
    evicting oldest-first in memory and on disk.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._store: dict[str, Any] = {}
        self._aux_store: dict[str, Any] = {}
        self.directory = Path(directory) if directory is not None else None
        #: Per-kind entry bound (``None`` = unbounded): whole-plan
        #: entries and each auxiliary kind (``estimate``, ``metrics``,
        #: ``robust``) are capped separately, oldest entry evicted
        #: first, both in memory and on disk.  Long-running processes
        #: (the planning service) set this so the cache directory
        #: cannot grow without limit.
        self.max_entries = max_entries
        #: Per-kind estimate of this writer's disk file count (files
        #: seen at the last directory scan plus writes since): lets
        #: writes skip the O(entries) eviction scan while safely under
        #: the bound.
        self._disk_counts: dict[str, int] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.aux_hits = 0
        self.aux_misses = 0
        self.evictions = 0
        #: Corrupt/truncated disk entries moved aside (never served).
        self.quarantined = 0

    def __len__(self) -> int:
        """Number of whole-plan entries (aux entries are not counted)."""
        return len(self._store)

    def _path(self, key: str, kind: str = "plan") -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.{kind}.pkl"

    @property
    def quarantine_directory(self) -> Path | None:
        """Where corrupt entries are moved (``None`` without a disk dir)."""
        if self.directory is None:
            return None
        return self.directory / QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt/truncated entry aside instead of serving it.

        The file lands in ``quarantine/`` next to the cache (same
        filesystem, so the move is an atomic rename) for post-mortem;
        a sibling process that already removed or re-wrote the path is
        fine — the goal is only that *this* reader never trusts it.
        """
        target_dir = self.quarantine_directory
        assert target_dir is not None
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Renamed/removed underneath us, or the sidecar is not
            # writable: fall back to deleting so the bad entry cannot
            # be re-read forever.
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def _read_entry(self, path: Path) -> Any | None:
        """Load one disk entry, verifying its checksum header.

        Returns ``None`` (a miss) when the file is absent; quarantines
        and returns ``None`` when it is present but corrupt, truncated
        or fails to unpickle — the one contract the service's chaos
        suite leans on: a bad byte on disk costs a recompute, never an
        exception and never a wrong plan.
        """
        try:
            blob = path.read_bytes()
        except OSError:
            return None  # missing (or unreadable): a plain miss
        if blob.startswith(_MAGIC):
            header_len = len(_MAGIC) + 65  # 64 hex chars + newline
            header = blob[len(_MAGIC):header_len]
            payload = blob[header_len:]
            if (
                len(blob) < header_len
                or not header.endswith(b"\n")
                or hashlib.sha256(payload).hexdigest().encode("ascii")
                != header[:-1]
            ):
                self._quarantine(path)
                return None
        else:
            payload = blob  # legacy pre-checksum entry
        try:
            return pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any garbage must quarantine
            self._quarantine(path)
            return None

    def _fetch(
        self, store: dict[str, Any], store_key: str, key: str, kind: str
    ) -> Any | None:
        """Shared lookup: in-memory first, then the disk file (if any)."""
        if store_key in store:
            return store[store_key]
        if self.directory is not None:
            value = self._read_entry(self._path(key, kind))
            if value is not None:
                store[store_key] = value
                if self.max_entries is not None:
                    # Reads must not grow a bounded cache either: a
                    # read-mostly process (the service's disk tier)
                    # would otherwise accumulate every digest it ever
                    # loaded.
                    prefix = "" if store is self._store else f"{kind}:"
                    self._evict_memory(store, prefix)
                return value
        return None

    def _write(
        self, store: dict[str, Any], store_key: str, key: str, kind: str,
        value: Any,
    ) -> None:
        """Shared store: in-memory plus an atomic disk write (if any).

        Disk writes go to a temp file first and are renamed into place,
        so concurrent readers of a shared directory never observe a
        half-written pickle; the checksum header makes even a torn
        *rename target* (a crashed writer, injected via the
        ``torn-cache-write`` fault site) detectable on read.
        """
        store[store_key] = value
        if self.directory is not None:
            path = self._path(key, kind)
            temp = path.with_suffix(f".tmp.{os.getpid()}")
            payload = pickle.dumps(value)
            blob = (
                _MAGIC
                + hashlib.sha256(payload).hexdigest().encode("ascii")
                + b"\n"
                + payload
            )
            injector = faultinject.get_injector()
            if injector and injector.should_fire("torn-cache-write"):
                # Simulate a writer that died mid-write: the entry on
                # disk is truncated.  This process keeps its in-memory
                # value (it did compute the result); only readers of
                # the shared directory see the tear — and the checksum
                # sends them to recompute instead of unpickling junk.
                blob = blob[: max(len(_MAGIC), len(blob) // 2)]
            temp.write_bytes(blob)
            os.replace(temp, path)
            if injector and injector.should_fire("corrupt-cache-entry"):
                # Flip one payload byte in place after the rename —
                # bit rot / a hostile write the next read must catch.
                try:
                    path.write_bytes(
                        faultinject.corrupt_bytes(
                            blob, seed=len(payload)
                        )
                    )
                except OSError:
                    pass
            # Unknown kinds stay unknown so the next _evict scans and
            # establishes the real count (overwrites may overcount; the
            # error is in the safe direction — an extra scan).
            if self.max_entries is not None and kind in self._disk_counts:
                self._disk_counts[kind] += 1
        if self.max_entries is not None:
            self._evict(store, kind)

    def _evict_memory(self, store: dict[str, Any], prefix: str) -> None:
        """Drop oldest in-memory entries with ``prefix`` beyond the bound."""
        matching = [key for key in store if key.startswith(prefix)]
        for key in matching[: max(0, len(matching) - self.max_entries)]:
            del store[key]
            self.evictions += 1

    def _evict(self, store: dict[str, Any], kind: str) -> None:
        """Drop oldest entries of one ``kind`` beyond ``max_entries``.

        In-memory stores evict in insertion order (dicts preserve it);
        the disk directory evicts the same kind's oldest files by
        modification time, so a long-running writer keeps the directory
        bounded even across restarts (ties broken by name for
        determinism).  The directory is only scanned once this writer's
        running count for the kind could exceed the bound — safely
        under it, a write costs no extra syscalls.  Concurrent writers
        may race an unlink; a file already removed by a sibling is
        simply skipped, and each writer's own bound keeps a shared
        directory bounded regardless.
        """
        prefix = "" if store is self._store else f"{kind}:"
        self._evict_memory(store, prefix)
        if self.directory is None:
            return
        count = self._disk_counts.get(kind)
        if count is not None and count <= self.max_entries:
            return
        stamped = []
        try:
            # Two processes bounding one directory race each other
            # freely: every step of the scan-and-unlink below must
            # tolerate a sibling having removed the file (ENOENT) — or
            # the directory itself — between syscalls.
            for path in self.directory.glob(f"*.{kind}.pkl"):
                try:
                    stamped.append((path.stat().st_mtime_ns, path.name, path))
                except OSError:
                    continue
        except OSError:
            return
        stamped.sort()
        for _, _, path in stamped[: max(0, len(stamped) - self.max_entries)]:
            try:
                path.unlink()
            except OSError:
                pass
        self._disk_counts[kind] = min(len(stamped), self.max_entries)

    def get(self, key: str) -> Any | None:
        """Stored plans for ``key``, or ``None`` (counts hit/miss)."""
        value = self._fetch(self._store, key, key, "plan")
        if value is not None:
            self.hits += 1
        else:
            self.misses += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (and on disk when configured)."""
        self._write(self._store, key, key, "plan", value)

    def get_aux(self, kind: str, key: str) -> Any | None:
        """Namespaced auxiliary entry (estimate, metrics, …) or ``None``.

        Auxiliary entries share the digest/disk machinery of whole-plan
        entries but live in their own ``kind`` namespace (disk files are
        suffixed ``.{kind}.pkl``), with separate ``aux_hits`` /
        ``aux_misses`` counters, and do not count towards ``len()``.
        """
        value = self._fetch(self._aux_store, f"{kind}:{key}", key, kind)
        if value is not None:
            self.aux_hits += 1
        else:
            self.aux_misses += 1
        return value

    def put_aux(self, kind: str, key: str, value: Any) -> None:
        """Store an auxiliary entry under (kind, key)."""
        self._write(self._aux_store, f"{kind}:{key}", key, kind, value)

    def clear(self) -> None:
        """Drop all in-memory entries (disk files are left alone)."""
        self._store.clear()
        self._aux_store.clear()
        self._disk_counts.clear()
        self.hits = 0
        self.misses = 0
        self.aux_hits = 0
        self.aux_misses = 0
        self.evictions = 0
        self.quarantined = 0
