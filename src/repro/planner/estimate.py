"""Analytic candidate pricing for the schedule planner.

The planner has to compare every schedule family before it can afford
to simulate any of them, so this module prices a candidate from the
cost model alone — no discrete-event execution.  Two quantities are
estimated per method:

* **iteration time** — per-device steady-state compute is read off a
  single-microbatch instance of the schedule (an ``m = 1`` schedule
  contains exactly one microbatch's worth of every pass stream, so
  summing its pass durations per device gives the per-microbatch cost
  ``C_d`` exactly, including folded-in vocabulary layers, S/T passes
  and the interlaced segments' synchronous all-reduces).  The probe is
  decomposed into :class:`~repro.costmodel.calibrate.PhaseFeatures`
  (steady state, ramp, per-pass overhead, collective α/β, stage P2P)
  and combined by the active
  :class:`~repro.costmodel.calibrate.CostModel`: the default analytic
  model computes the standard pipeline bound ``m · max_d C_d`` plus a
  ramp term, bit-identically to the historical estimator; a calibrated
  :class:`~repro.costmodel.calibrate.HardwareProfile` reweights the
  phases with parameters fitted against simulator ground truth;
* **peak memory** — static parameter/optimizer bytes from the layout
  (:func:`repro.sim.memory.device_param_bytes`) plus live-microbatch
  activation counts taken from the paper's per-family analysis: 1F1B
  holds ``p − d`` microbatches on device ``d``, Vocabulary Parallelism
  adds one microbatch per communication barrier (§5.1), the interlaced
  pipeline holds 1.5× 1F1B (Appendix B.1), and the V-Half families are
  memory-balanced at roughly half of 1F1B's device-0 peak (Appendix D).
  Memory is never calibrated — profiles reweight time only.

Estimates deliberately favour robustness of the *ranking* over
absolute accuracy — the planner re-measures the top candidates with
the simulator before committing (see :mod:`repro.planner.planner`),
though a calibrated profile's error bounds let it skip verifications
the analytic margin already decides (trust-gated top-k).
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.calibrate import CostModel, PhaseFeatures, get_cost_model
from repro.costmodel.memory import MemoryModel
from repro.harness.experiments import KNOWN_METHODS, build_schedule
from repro.scheduling.passes import CollectiveKind
from repro.scheduling.schedule import Schedule
from repro.sim.memory import device_param_bytes
from repro.sim.runtime import BF16, FP32, RuntimeModel, SimulationSetup

#: Default memory model shared by every estimate (frozen, so safe); a
#: fresh ``MemoryModel()`` per call defeated the probe memoization key.
_DEFAULT_MEMORY_MODEL = MemoryModel()


@dataclass(frozen=True)
class ProbeComponents:
    """Everything the m=1 probe exposes to feature extraction."""

    probe: Schedule
    compute: tuple[float, ...]      #: per-device pass-duration sums
    passes: tuple[int, ...]         #: per-device pass counts
    coll_alpha: float               #: per-microbatch collective latency seconds
    coll_beta: float                #: per-microbatch collective bandwidth seconds
    p2p: float                      #: fwd+bwd stage-to-stage traversal seconds


#: Memoized m=1 probes: (method, setup, cost-model digest) ->
#: ProbeComponents.  Probes are structural — the planner prices the
#: same (method, config) pair once per process instead of rebuilding
#: the probe schedule and re-summing pass durations on every call.
#: The cost-model digest is part of the key because a pluggable model
#: may reprice probe passes: two profiles must never share entries.
_PROBE_LOCK = threading.Lock()
_PROBE_CACHE: OrderedDict[
    tuple[str, SimulationSetup, str], ProbeComponents
] = OrderedDict()
_PROBE_CACHE_LIMIT = 512


def clear_probe_cache() -> None:
    """Drop all memoized m=1 probe schedules (tests, benchmarks)."""
    with _PROBE_LOCK:
        _PROBE_CACHE.clear()


def probe_cache_stats() -> dict[str, int]:
    """Size of the probe memo (tests assert on keying behaviour)."""
    with _PROBE_LOCK:
        return {"entries": len(_PROBE_CACHE)}


def _collective_kinds(probe: Schedule) -> tuple[CollectiveKind, ...]:
    """The collective kinds the executor materializes per microbatch.

    Mirrors the graph construction in :mod:`repro.sim.compiled`: one
    instance of each kind per microbatch — C0/C1 (+C2 under
    Algorithm 1) for partitioned vocabulary layers, the input-layer
    all-reduce/broadcast pair when input passes exist.  Interlaced
    synchronous all-reduces are folded into the VF/VB pass durations
    already, so they price through ``compute``, not here.
    """
    kinds: list[CollectiveKind] = []
    if probe.vocab_algorithm is not None:
        kinds.append(CollectiveKind.C0_BROADCAST)
        kinds.append(CollectiveKind.C1_STATS)
        if probe.vocab_algorithm == 1:
            kinds.append(CollectiveKind.C2_GRAD_REDUCE)
    if probe.has_input_passes:
        kinds.append(CollectiveKind.INPUT_ALLREDUCE)
        kinds.append(CollectiveKind.INPUT_BROADCAST)
    return tuple(kinds)


def _probe(
    method: str, probe_setup: SimulationSetup, cost_model: CostModel
) -> ProbeComponents:
    """The m=1 probe schedule and its phase components, memoized.

    ``SimulationSetup`` is a frozen dataclass, so (method, setup,
    cost-model digest) is an exact key: every input of probe
    construction and pass pricing is a field of the setup, and the
    digest pins the pricing model's identity.
    """
    key = (method, probe_setup, cost_model.digest())
    with _PROBE_LOCK:
        cached = _PROBE_CACHE.get(key)
        if cached is not None:
            _PROBE_CACHE.move_to_end(key)
            return cached
    probe = build_schedule(method, probe_setup, refine=False)
    runtime = RuntimeModel(probe_setup, probe)
    compute = tuple(
        sum(runtime.pass_duration(pass_) for pass_ in order)
        for order in probe.device_orders
    )
    passes = tuple(len(order) for order in probe.device_orders)
    kinds = _collective_kinds(probe)
    coll_alpha = 0.0
    coll_beta = 0.0
    if kinds:
        # α/β split through the real communication model: re-price the
        # same collectives with zeroed link latencies; the difference is
        # the per-microbatch latency (α) seconds, the remainder the
        # bandwidth + folded elementwise (β) seconds.
        total = math.fsum(runtime.collective_duration(kind) for kind in kinds)
        zero_latency = dataclasses.replace(
            probe_setup.hardware, link_latency=0.0, inter_node_latency=0.0
        )
        beta_runtime = RuntimeModel(
            dataclasses.replace(probe_setup, hardware=zero_latency), probe
        )
        coll_beta = math.fsum(
            beta_runtime.collective_duration(kind) for kind in kinds
        )
        coll_alpha = total - coll_beta
    p2p = 2.0 * math.fsum(
        runtime.p2p_duration(device, device + 1)
        for device in range(probe.layout.num_devices - 1)
    )
    components = ProbeComponents(
        probe=probe,
        compute=compute,
        passes=passes,
        coll_alpha=coll_alpha,
        coll_beta=coll_beta,
        p2p=p2p,
    )
    with _PROBE_LOCK:
        _PROBE_CACHE[key] = components
        while len(_PROBE_CACHE) > _PROBE_CACHE_LIMIT:
            _PROBE_CACHE.popitem(last=False)
    return components


@dataclass(frozen=True)
class CandidateEstimate:
    """Cost-model price of one schedule family on one config."""

    method: str
    iteration_time: float
    per_device_peak: tuple[float, ...]
    per_device_compute: tuple[float, ...]

    @property
    def peak_bytes(self) -> float:
        """Max estimated peak across devices."""
        return max(self.per_device_peak)


def infeasibility_reason(
    method: str, model: ModelConfig, parallel: ParallelConfig
) -> str | None:
    """Why ``method`` cannot be instantiated on this config, or ``None``.

    These are the structural constraints the schedule generators
    enforce; the planner filters on them instead of catching
    ``ValueError`` so infeasible candidates carry a readable reason.
    """
    if method not in KNOWN_METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {KNOWN_METHODS}")
    p = parallel.pipeline_size
    if method.startswith("vhalf"):
        if model.num_layers % (2 * p) != 0:
            return (
                f"V-Half needs num_layers divisible by 2p "
                f"({model.num_layers} % {2 * p} != 0)"
            )
    elif model.num_layers % p != 0:
        return (
            f"needs num_layers divisible by pipeline_size "
            f"({model.num_layers} % {p} != 0)"
        )
    return None


def _live_microbatches(method: str, device: int, p: int, m: int) -> float:
    """Estimated peak in-flight activation microbatches on ``device``.

    The per-family counts the paper derives (Figure 10 annotations,
    Appendix B.1, Appendix D), capped at ``m``.
    """
    if method.startswith("vhalf"):
        barriers = {"vhalf-vocab-1": 2, "vhalf-vocab-2": 1}.get(method, 0)
        live = p / 2.0 + barriers
    elif method == "interlaced":
        live = 1.5 * (p - device)
    elif method in ("vocab-1", "vocab-2"):
        barriers = 2 if method == "vocab-1" else 1
        live = (p - device) + barriers
    else:  # baseline / redis
        live = float(p - device)
    return min(float(m), max(1.0, live))


def _probe_setup(setup: SimulationSetup) -> SimulationSetup:
    return SimulationSetup(
        setup.model,
        setup.parallel.replace(num_microbatches=1),
        hardware=setup.hardware,
        efficiency=setup.efficiency,
        interlaced_sync_allreduce=setup.interlaced_sync_allreduce,
        pass_overhead=setup.pass_overhead,
    )


def phase_features(
    method: str,
    setup: SimulationSetup,
    cost_model: CostModel | None = None,
) -> PhaseFeatures:
    """Decompose one (method, config) estimate into phase features.

    This is the feature extractor both the planner's pricing and the
    calibration fitting loop share: ``steady`` and ``ramp`` reproduce
    the historical analytic terms exactly (so the analytic model's
    prediction is bit-identical to the old estimator), and the
    remaining components give a fitted profile per-phase knobs —
    per-pass host overhead, collective latency/bandwidth seconds,
    stage-to-stage P2P latency.
    """
    cost_model = cost_model or get_cost_model(None)
    parallel = setup.parallel
    p = parallel.pipeline_size
    m = parallel.num_microbatches
    probe = _probe(method, _probe_setup(setup), cost_model)
    compute = probe.compute
    bottleneck = max(compute)
    # Steady state is bound by the slowest device; warmup/cooldown ramps
    # add roughly one traversal of the average stage.
    ramp = (p - 1) * (sum(compute) / p)
    bottleneck_device = max(range(p), key=lambda d: (compute[d], -d))
    return PhaseFeatures(
        method=method,
        steady=m * bottleneck,
        ramp=ramp,
        overhead=m * probe.passes[bottleneck_device] * setup.pass_overhead,
        coll_alpha=m * probe.coll_alpha,
        coll_beta=m * probe.coll_beta,
        p2p=probe.p2p,
    )


def estimate_method(
    method: str,
    setup: SimulationSetup,
    memory_model: MemoryModel | None = None,
    cost_model: CostModel | None = None,
) -> CandidateEstimate:
    """Price one method with the active cost model.

    Builds a single-microbatch instance of the schedule (cheap — a few
    passes per device, memoized process-wide) to obtain the exact stage
    layout and pass durations, then extrapolates to ``m`` microbatches
    through ``cost_model`` (default: the analytic model, bit-identical
    to the planner's historical estimate).
    """
    memory_model = memory_model or _DEFAULT_MEMORY_MODEL
    cost_model = cost_model or get_cost_model(None)
    model = setup.model
    parallel = setup.parallel
    p = parallel.pipeline_size
    m = parallel.num_microbatches

    probe_components = _probe(method, _probe_setup(setup), cost_model)
    probe = probe_components.probe
    compute = probe_components.compute
    features = phase_features(method, setup, cost_model)
    iteration = cost_model.predict(features)

    layout = probe.layout
    params = device_param_bytes(setup, layout, memory_model)
    n = setup.tokens
    h = model.hidden_size
    shard = setup.partition.shard_size
    b = parallel.microbatch_size
    peaks = []
    for device in range(p):
        layers = sum(layout.transformer_layers[device])
        live = _live_microbatches(method, device, p, m)
        act = live * memory_model.activation_bytes(model, b, layers)
        # Output-layer transients on top of transformer activations.
        if layout.vocab_parallel:
            act += 2.0 * n * shard * FP32
            if probe.vocab_algorithm == 2:
                act += 2.0 * n * h * BF16
            if probe.interlaced:
                act += n * h * BF16
        else:
            holds_output = any(
                layout.hosts_output(device, chunk)
                for chunk in range(layout.num_chunks)
            )
            if holds_output:
                act += n * setup.padded_vocab_single * FP32
        peaks.append(params[device] + act + memory_model.overhead_bytes)
    return CandidateEstimate(
        method=method,
        iteration_time=iteration,
        per_device_peak=tuple(peaks),
        per_device_compute=compute,
    )
