"""Incremental what-if queries over a resident compiled graph.

:func:`plan` answers "which schedule family should I run?"; this module
answers the follow-up an operator actually asks mid-incident: *"what
happens to my chosen schedule if device 7 slows down 30 %?"*.  A full
re-plan would re-enumerate, re-estimate and re-simulate every family —
milliseconds of work to price a perturbation whose affected cone is a
few hundred nodes.  :func:`whatif` instead keeps the method's compiled
graph resident (checkpointed via
:meth:`~repro.sim.compiled.CompiledGraph.checkpoint`) and prices the
perturbation with cone-limited delta replay
(:meth:`~repro.sim.compiled.CompiledGraph.execute_delta_summary`),
which is bit-identical to a fresh simulation by construction and costs
time proportional to the perturbation's successor cone, not the graph.

The result digest (:func:`whatif_cache_key`) follows the same
normalization discipline as :func:`~repro.planner.planner.plan_cache_key`
so serving-layer cache tiers (the service's in-process LRU, the
disk-backed :class:`~repro.planner.cache.PlanCache`) can address a
what-if without computing it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.harness.experiments import (
    KNOWN_METHODS,
    build_schedule,
    compiled_graph_for,
)
from repro.planner.cache import PlanCache, config_digest
from repro.planner.planner import PLANNER_VERSION, default_plan_cache
from repro.scenarios import ClusterScenario, get_scenario
from repro.sim import RuntimeModel, SimulationSetup
from repro.sim.compiled import ExecutionSummary

#: Resident compiled graphs with live checkpoints, keyed on the binding
#: digest.  Small on purpose: each entry pins a full graph plus its
#: LevelState; the serving layer's request mix concentrates on a handful
#: of (model, method) bindings at a time.
_RESIDENT_LIMIT = 8
_RESIDENT: OrderedDict[str, object] = OrderedDict()
#: One lock guards the resident table *and* each delta query: the
#: LevelState undo log is mutated in place during a query, so two
#: threads sharing a graph must serialize.  Queries are cone-limited
#: (microseconds), so the critical section is cheap.
_RESIDENT_LOCK = threading.Lock()


def clear_whatif_graphs() -> None:
    """Drop every resident graph/checkpoint (tests, memory pressure)."""
    with _RESIDENT_LOCK:
        _RESIDENT.clear()


@dataclass(frozen=True)
class WhatifResult:
    """Outcome of one :func:`whatif` query.

    ``baseline_*`` describe the unperturbed schedule (the resident
    checkpoint); ``whatif_*`` the same schedule with the perturbation
    applied.  Both come from the same compiled graph, so the numbers
    are directly comparable — ``slowdown`` is the headline answer.
    ``support`` counts the perturbed pass durations and ``device`` is
    the normalized (non-negative) device index.
    """

    method: str
    device: int
    factor: float
    baseline_time: float
    whatif_time: float
    baseline_bubble: float
    whatif_bubble: float
    support: int
    cache_key: str = ""

    @property
    def slowdown(self) -> float:
        """Perturbed / baseline iteration time (1.0 = unaffected)."""
        return self.whatif_time / self.baseline_time

    def as_dict(self) -> dict:
        """JSON-ready view (the service's response body)."""
        return {
            "method": self.method,
            "device": self.device,
            "factor": self.factor,
            "baseline_time": self.baseline_time,
            "whatif_time": self.whatif_time,
            "slowdown": self.slowdown,
            "baseline_bubble": self.baseline_bubble,
            "whatif_bubble": self.whatif_bubble,
            "support": self.support,
            "cache_key": self.cache_key,
        }


def _normalize_device(device: int, num_devices: int) -> int:
    if not -num_devices <= device < num_devices:
        raise ValueError(
            f"device must be in [-{num_devices}, {num_devices}), got {device}"
        )
    return device % num_devices


def whatif_cache_key(
    model: ModelConfig,
    parallel: ParallelConfig,
    *,
    method: str,
    device: int,
    factor: float,
    hardware: HardwareModel = A100_SXM_80G,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    refine: bool = True,
) -> str:
    """The digest :func:`whatif` stores its result under.

    Public for the same reason as
    :func:`~repro.planner.planner.plan_cache_key`: serving-layer cache
    tiers address entries without computing them.  Inputs are
    normalized exactly as :func:`whatif` normalizes them — the scenario
    resolved by name, the device index made non-negative — so
    ``device=-1`` and ``device=p-1`` share one entry.
    """
    if method not in KNOWN_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {KNOWN_METHODS}"
        )
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    device = _normalize_device(device, parallel.pipeline_size)
    scenario_sig = None if scenario is None else scenario.signature()
    return config_digest(
        "whatif", method, model, parallel, hardware, pass_overhead,
        scenario_sig, refine, device, factor, PLANNER_VERSION,
    )


def _graph_digest(
    model: ModelConfig,
    parallel: ParallelConfig,
    method: str,
    hardware: HardwareModel,
    pass_overhead: float | None,
    scenario_sig: tuple | None,
    refine: bool,
) -> str:
    """Key of the resident binding — everything but (device, factor)."""
    return config_digest(
        "whatif-graph", method, model, parallel, hardware, pass_overhead,
        scenario_sig, refine, PLANNER_VERSION,
    )


def _resident_graph(
    graph_key: str,
    method: str,
    setup: SimulationSetup,
    scenario: ClusterScenario | None,
    refine: bool,
):
    """Compiled graph for the binding, checkpoint resident across calls.

    Caller must hold :data:`_RESIDENT_LOCK`.  Distinct from the
    structural cache behind
    :func:`~repro.harness.experiments.compiled_graph_for`: that cache
    re-binds (a fresh clone, no checkpoint) on every hit, which is
    right for batch replay but would force a full baseline sweep per
    what-if.  Here the *bound* graph itself stays resident, so repeated
    queries against one binding pay only their cone.
    """
    graph = _RESIDENT.get(graph_key)
    if graph is not None:
        _RESIDENT.move_to_end(graph_key)
        return graph
    schedule = build_schedule(method, setup, refine=refine, scenario=scenario)
    if scenario is None:
        runtime = RuntimeModel(setup, schedule)
    else:
        # runtime_for wants the scenario setup (interconnect priced in);
        # device speeds then land in the wrapper.
        runtime = scenario.runtime_for(scenario.setup_for(setup), schedule)
    graph = compiled_graph_for(schedule, runtime)
    graph.checkpoint()
    _RESIDENT[graph_key] = graph
    while len(_RESIDENT) > _RESIDENT_LIMIT:
        _RESIDENT.popitem(last=False)
    return graph


def whatif(
    model: ModelConfig,
    parallel: ParallelConfig,
    *,
    method: str,
    device: int,
    factor: float,
    hardware: HardwareModel = A100_SXM_80G,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    refine: bool = True,
    cache: PlanCache | None = None,
) -> WhatifResult:
    """Price one single-device perturbation incrementally.

    Scales every pass of ``device`` (negative indexes from the end of
    the pipeline) by ``factor`` and returns baseline vs perturbed
    iteration time and mean bubble fraction for ``method``'s schedule
    on the given binding.  The first call for a binding compiles and
    checkpoints the schedule's graph; subsequent calls — any device,
    any factor — replay only the perturbation's successor cone, which
    is bit-identical to a fresh simulation of the perturbed binding.

    ``scenario`` prices the *baseline* on a non-ideal cluster first
    (same semantics as :func:`~repro.planner.planner.plan`); the
    what-if factor then applies on top of the scenario's device speeds.
    Results are cached in ``cache`` (default: the process-wide
    :class:`~repro.planner.cache.PlanCache`) under
    :func:`whatif_cache_key`, in the ``"whatif"`` auxiliary namespace.
    """
    cache = cache if cache is not None else default_plan_cache()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    key = whatif_cache_key(
        model, parallel, method=method, device=device, factor=factor,
        hardware=hardware, pass_overhead=pass_overhead, scenario=scenario,
        refine=refine,
    )
    cached = cache.get_aux("whatif", key)
    if cached is not None:
        return cached
    device = _normalize_device(device, parallel.pipeline_size)
    scenario_sig = None if scenario is None else scenario.signature()
    setup_kwargs = {} if pass_overhead is None else {"pass_overhead": pass_overhead}
    setup = SimulationSetup(model, parallel, hardware=hardware, **setup_kwargs)
    graph_key = _graph_digest(
        model, parallel, method, hardware, pass_overhead, scenario_sig, refine
    )
    with _RESIDENT_LOCK:
        graph = _resident_graph(graph_key, method, setup, scenario, refine)
        state = graph.checkpoint()
        baseline = ExecutionSummary(
            iteration_time=max(state.end) - min(state.ready),
            device_busy=state.busy,
        )
        perturbation = graph.device_perturbation(device, factor)
        summary = graph.execute_delta_summary(perturbation)
    result = WhatifResult(
        method=method,
        device=device,
        factor=factor,
        baseline_time=baseline.iteration_time,
        whatif_time=summary.iteration_time,
        baseline_bubble=baseline.mean_bubble_fraction(),
        whatif_bubble=summary.mean_bubble_fraction(),
        support=perturbation.support,
        cache_key=key,
    )
    cache.put_aux("whatif", key, result)
    return result
