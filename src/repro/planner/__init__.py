"""Schedule planner: pick the best pipeline schedule for a config.

The paper shows that vocabulary-parallel schedules dominate the naive
and Redis baselines across device counts, vocabulary ratios and memory
budgets — but only by replaying its fixed experiment grid.  This
package turns that result into a *decision procedure*: given any
model/hardware description, it enumerates every implemented schedule
family, prices each with the analytic cost model, verifies the
frontrunners with the discrete-event simulator, and ranks them under a
peak-memory constraint.

.. deprecated::
    Importing planner names from ``repro.planner`` directly is
    deprecated; the supported surface is :mod:`repro.api` (or the
    defining submodule — :mod:`repro.planner.planner`,
    :mod:`repro.planner.sweep`, :mod:`repro.planner.whatif`,
    :mod:`repro.planner.cache`, :mod:`repro.planner.estimate`).  Every
    historical name still resolves here, with a one-time
    :class:`DeprecationWarning` per name.

CLI: ``repro-experiments plan --devices 8 --vocab 128k``.
"""

import sys
from types import ModuleType

from repro._lazy import deprecated_exports

_EXPORTS = {
    "PlanCache": "repro.planner.cache",
    "config_digest": "repro.planner.cache",
    "CandidateEstimate": "repro.planner.estimate",
    "clear_probe_cache": "repro.planner.estimate",
    "estimate_method": "repro.planner.estimate",
    "infeasibility_reason": "repro.planner.estimate",
    "phase_features": "repro.planner.estimate",
    "probe_cache_stats": "repro.planner.estimate",
    "PlanCandidate": "repro.planner.planner",
    "PlannerConstraints": "repro.planner.planner",
    "RankedPlans": "repro.planner.planner",
    "TRUST_SAFETY": "repro.planner.planner",
    "clear_plan_cache": "repro.planner.planner",
    "default_plan_cache": "repro.planner.planner",
    "plan": "repro.planner.planner",
    "plan_cache_key": "repro.planner.planner",
    "SweepOutcome": "repro.planner.sweep",
    "SweepPoint": "repro.planner.sweep",
    "best_method_table": "repro.planner.sweep",
    "default_chunk_size": "repro.planner.sweep",
    "discard_pool": "repro.planner.sweep",
    "get_pool": "repro.planner.sweep",
    "grid": "repro.planner.sweep",
    "model_for_devices": "repro.planner.sweep",
    "plan_point": "repro.planner.sweep",
    "plan_points": "repro.planner.sweep",
    "shutdown_pools": "repro.planner.sweep",
    "sweep": "repro.planner.sweep",
    "WhatifResult": "repro.planner.whatif",
    "clear_whatif_graphs": "repro.planner.whatif",
    "whatif": "repro.planner.whatif",
    "whatif_cache_key": "repro.planner.whatif",
}

__getattr__, __dir__ = deprecated_exports("repro.planner", _EXPORTS, globals())

__all__ = sorted(_EXPORTS)

#: Exported callables shadowed by a same-named submodule.  Importing
#: ``repro.planner.sweep`` (the module) rebinds the parent's ``sweep``
#: attribute to the module object, so the PEP-562 ``__getattr__`` would
#: never fire and ``from repro.planner import sweep`` would hand old
#: callers a module instead of the function.  A module-class override
#: keeps the historical function binding for these two names.
_SHADOWED = ("sweep", "whatif")


class _ShimModule(ModuleType):
    def __getattribute__(self, name):
        if name in _SHADOWED:
            value = ModuleType.__getattribute__(self, "__dict__").get(name)
            if value is None or isinstance(value, ModuleType):
                return __getattr__(name)
            return value
        return ModuleType.__getattribute__(self, name)


sys.modules[__name__].__class__ = _ShimModule
