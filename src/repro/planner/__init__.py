"""Schedule planner: pick the best pipeline schedule for a config.

The paper shows that vocabulary-parallel schedules dominate the naive
and Redis baselines across device counts, vocabulary ratios and memory
budgets — but only by replaying its fixed experiment grid.  This
package turns that result into a *decision procedure*: given any
model/hardware description, it enumerates every implemented schedule
family, prices each with the analytic cost model, verifies the
frontrunners with the discrete-event simulator, and ranks them under a
peak-memory constraint.

Programmatic entry points:

* :func:`plan` — rank schedule families for one configuration;
* :func:`whatif` — price a single-device slowdown incrementally via
  cone-limited delta replay on a resident compiled graph;
* :func:`sweep` / :func:`grid` — plan whole (devices, vocab,
  microbatches, memory budget) grids in parallel;
* :class:`PlannerConstraints` — memory budget, family restriction and
  simulation effort;
* :class:`PlanCache` / :func:`clear_plan_cache` — result caching keyed
  on a config digest.

CLI: ``repro-experiments plan --devices 8 --vocab 128k``.
"""

from repro.planner.cache import PlanCache, config_digest
from repro.planner.estimate import (
    CandidateEstimate,
    clear_probe_cache,
    estimate_method,
    infeasibility_reason,
    phase_features,
    probe_cache_stats,
)
from repro.planner.planner import (
    PlanCandidate,
    PlannerConstraints,
    RankedPlans,
    TRUST_SAFETY,
    clear_plan_cache,
    default_plan_cache,
    plan,
    plan_cache_key,
)
from repro.planner.sweep import (
    SweepOutcome,
    SweepPoint,
    best_method_table,
    default_chunk_size,
    discard_pool,
    get_pool,
    grid,
    model_for_devices,
    plan_point,
    plan_points,
    shutdown_pools,
    sweep,
)
from repro.planner.whatif import (
    WhatifResult,
    clear_whatif_graphs,
    whatif,
    whatif_cache_key,
)

__all__ = [
    "CandidateEstimate",
    "PlanCache",
    "PlanCandidate",
    "PlannerConstraints",
    "RankedPlans",
    "SweepOutcome",
    "SweepPoint",
    "TRUST_SAFETY",
    "WhatifResult",
    "best_method_table",
    "clear_plan_cache",
    "clear_probe_cache",
    "clear_whatif_graphs",
    "config_digest",
    "default_chunk_size",
    "default_plan_cache",
    "discard_pool",
    "estimate_method",
    "get_pool",
    "grid",
    "infeasibility_reason",
    "model_for_devices",
    "phase_features",
    "plan",
    "plan_cache_key",
    "plan_point",
    "plan_points",
    "probe_cache_stats",
    "shutdown_pools",
    "sweep",
    "whatif",
    "whatif_cache_key",
]
