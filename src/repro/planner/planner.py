"""The schedule planner: enumerate → price → verify → rank.

Given an arbitrary model/hardware description, :func:`plan` chooses a
pipeline schedule the way the paper's evaluation would: it enumerates
every implemented schedule family (1F1B baseline, Redis layer
redistribution, Vocab-1F1B with Algorithm 1/2, the interlaced
pipeline, and the V-Half family), prices each candidate with the
analytic cost model (:mod:`repro.planner.estimate`), simulates the
most promising candidates with the discrete-event executor
(:mod:`repro.sim` via :func:`repro.harness.experiments.run_method`),
and ranks by iteration time subject to a per-device peak-memory
budget.

The two-tier design matters: analytic pricing is ~100× cheaper than a
full simulation, so the planner can afford to scan the whole family
space (and, through :mod:`repro.planner.sweep`, whole hardware grids)
while still grounding its final answer in measured schedule timings —
the estimate's vocab-1 vs vocab-2 near-ties are resolved by the
simulator, never by the estimate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.calibrate import CostModel, resolve_cost_model
from repro.costmodel.hardware import A100_SXM_80G, HardwareModel
from repro.costmodel.memory import GiB, MemoryModel
from repro.costmodel.mfu import mfu
from repro.harness.experiments import (
    KNOWN_METHODS,
    build_schedule,
    generate_method_schedule,
    run_method,
)
from repro.planner.cache import PlanCache, config_digest
from repro.planner.estimate import estimate_method, infeasibility_reason
from repro.scenarios import (
    ClusterScenario,
    RobustnessObjective,
    RobustnessStats,
    get_scenario,
    method_robustness,
)
from repro.scheduling import Schedule
from repro.sim import SimulationSetup

#: Bumped whenever ranking semantics change, to invalidate stale caches.
#: 2: per-method estimate/metrics entries (budget-independent, keyed on
#: the structural signature) and the ``pass_overhead`` binding knob.
#: 3: cluster scenarios — every whole-plan and metrics digest carries
#: the scenario signature (``None`` for the nominal cluster), and the
#: robustness ranking mode adds Monte Carlo aux entries.
#: 4: incremental what-if queries (the ``whatif`` aux namespace) and
#: the ``jitter_devices`` scenario field, which changes the shape of
#: every scenario signature.
#: 5: pluggable cost models — the active profile's content digest is
#: part of every whole-plan and estimate digest, and trust-gated
#: verification can shrink the simulated set.
PLANNER_VERSION = 5

#: Safety factor applied to a profile's reported family-level error
#: bound before it may prove a candidate out of the simulated set: a
#: candidate is skipped only when its error-inflated estimate *lower*
#: bound still exceeds the leader's error-inflated *upper* bound.
TRUST_SAFETY = 2.0

#: Module-level default cache used when ``plan(..., cache=None)``.
_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide cache :func:`plan` uses by default."""
    return _DEFAULT_CACHE


def clear_plan_cache() -> None:
    """Empty the process-wide default cache."""
    _DEFAULT_CACHE.clear()


@dataclass(frozen=True)
class PlannerConstraints:
    """What the planner must respect and how hard it may work.

    Attributes
    ----------
    memory_budget_gib:
        Per-device peak-memory budget in GiB; ``None`` uses the
        hardware model's HBM capacity (80 GiB on the paper's A100s).
    methods:
        Restrict the search to these schedule families; ``None``
        considers every implemented method
        (:data:`repro.harness.experiments.KNOWN_METHODS`).
    simulate_top_k:
        How many of the best-estimated candidates to verify with the
        discrete-event simulator.  ``None`` simulates every feasible
        candidate; ``0`` ranks purely on the analytic estimate.
    estimate_margin:
        Candidates whose *estimated* peak exceeds the budget by up to
        this factor are always simulated (even beyond ``simulate_top_k``)
        rather than rejected outright, since the analytic memory model
        is only accurate to ~1 GiB; their fate is decided by the
        simulated peak.  Candidates beyond the margin are rejected on
        the estimate, as are borderline ones when simulation is
        disabled (``simulate_top_k=0``).
    refine:
        Whether simulated candidates get the work-conserving order
        refinement pass (the paper's §6.1 profiling step).
    cost_model:
        Name of the cost model pricing the analytic estimates —
        ``None``/``"analytic"`` for the fixed analytic model
        (bit-identical to the historical planner), or a registered /
        built-in :class:`~repro.costmodel.calibrate.HardwareProfile`
        name (e.g. ``"a100-sim"``).  A *calibrated* profile
        additionally enables trust-gated verification: candidates whose
        error-inflated estimates provably lose to the leader are not
        simulated (see :data:`TRUST_SAFETY`); uncalibrated or stale
        profiles fall back to full top-k verification.
    """

    memory_budget_gib: float | None = None
    methods: tuple[str, ...] | None = None
    simulate_top_k: int | None = 3
    estimate_margin: float = 1.15
    refine: bool = True
    cost_model: str | None = None

    def __post_init__(self) -> None:
        if self.cost_model is not None and not isinstance(self.cost_model, str):
            raise ValueError(
                "cost_model must be a registered cost-model name or None, "
                f"got {self.cost_model!r}"
            )
        if self.cost_model == "analytic":
            # Normalize the two spellings of the default model so they
            # share one cache-key universe.
            object.__setattr__(self, "cost_model", None)
        if self.memory_budget_gib is not None and self.memory_budget_gib <= 0:
            raise ValueError(
                f"memory_budget_gib must be positive, got {self.memory_budget_gib}"
            )
        if self.simulate_top_k is not None and self.simulate_top_k < 0:
            raise ValueError(
                f"simulate_top_k must be >= 0 or None, got {self.simulate_top_k}"
            )
        if self.estimate_margin < 1.0:
            raise ValueError(
                f"estimate_margin must be >= 1, got {self.estimate_margin}"
            )
        if self.methods is not None:
            for method in self.methods:
                if method not in KNOWN_METHODS:
                    raise ValueError(
                        f"unknown method {method!r}; expected one of {KNOWN_METHODS}"
                    )


@dataclass(frozen=True)
class PlanCandidate:
    """One (schedule family, config) pairing with its price.

    ``source`` records how the ranking numbers were obtained:
    ``"sim"`` (discrete-event simulation), ``"estimate"`` (analytic
    cost model only) or ``"structural"`` (the generator cannot even
    instantiate this family on the config).  ``iteration_time`` /
    ``peak_memory_gb`` hold the ranking values from that source;
    the ``estimated_*`` fields always carry the analytic numbers when
    they were computed.
    """

    method: str
    feasible: bool
    source: str
    reason: str = ""
    iteration_time: float | None = None
    peak_memory_gb: float | None = None
    mfu: float | None = None
    estimated_time: float | None = None
    estimated_peak_gb: float | None = None
    #: Monte Carlo ranking value (the objective's quantile of the
    #: jittered iteration time) and the full statistics behind it;
    #: ``None`` unless the plan ran in robustness mode.
    robust_time: float | None = None
    robust_stats: RobustnessStats | None = None

    @property
    def simulated(self) -> bool:
        return self.source == "sim"


@dataclass
class RankedPlans:
    """Outcome of one :func:`plan` call.

    ``ranked`` lists feasible candidates from fastest to slowest
    (simulator-verified candidates rank ahead of estimate-only ones);
    ``rejected`` lists candidates that are structurally impossible or
    blew the memory budget, each carrying its reason.  The candidate
    sequences are tuples because plans are shared through the cache:
    a hit returns the stored object, which must stay immutable.
    """

    model: ModelConfig
    parallel: ParallelConfig
    constraints: PlannerConstraints
    memory_budget_gib: float
    ranked: tuple[PlanCandidate, ...] = ()
    rejected: tuple[PlanCandidate, ...] = ()
    cache_key: str = ""
    #: The pass-overhead binding the plan was priced under (``None`` =
    #: the SimulationSetup default).
    pass_overhead: float | None = None
    #: Cluster scenario the plan was priced under (``None`` = the
    #: nominal homogeneous cluster) and, when Monte Carlo ranking was
    #: requested, the robustness objective.
    scenario: ClusterScenario | None = None
    robustness: RobustnessObjective | None = None
    #: Cost model that priced the estimates (``"analytic"`` unless the
    #: constraints named a profile), whether trust gating was active,
    #: and which candidates it proved out of the simulated set.
    cost_model: str = "analytic"
    trust_gated: bool = False
    trust_skipped: tuple[str, ...] = ()

    @property
    def best(self) -> PlanCandidate:
        """The top-ranked feasible candidate."""
        if not self.ranked:
            raise ValueError(
                "no feasible schedule for this config; "
                f"rejected: {[(c.method, c.reason) for c in self.rejected]}"
            )
        return self.ranked[0]

    @property
    def methods_considered(self) -> list[str]:
        return [c.method for c in self.ranked] + [c.method for c in self.rejected]

    def candidate(self, method: str) -> PlanCandidate:
        """Look up one method's candidate, ranked or rejected."""
        for c in self.ranked + self.rejected:
            if c.method == method:
                return c
        raise KeyError(f"method {method!r} was not considered")

    def build_best_schedule(
        self, hardware: HardwareModel = A100_SXM_80G
    ) -> Schedule:
        """Materialize the winning schedule (for execution or tracing)."""
        kwargs = {}
        if self.pass_overhead is not None:
            kwargs["pass_overhead"] = self.pass_overhead
        setup = SimulationSetup(
            self.model, self.parallel, hardware=hardware, **kwargs
        )
        return build_schedule(
            self.best.method,
            setup,
            refine=self.constraints.refine,
            scenario=self.scenario,
        )

    def render(self) -> str:
        """ASCII report in the style of the paper-table runners."""
        from repro.harness.tables import format_table

        robust = self.robustness is not None
        rows: list[list[object]] = []
        for rank, c in enumerate(self.ranked, start=1):
            row = [
                rank,
                c.method,
                c.source,
                None if c.iteration_time is None else round(c.iteration_time, 3),
                None if c.mfu is None else round(100.0 * c.mfu, 2),
                None if c.peak_memory_gb is None else round(c.peak_memory_gb, 2),
            ]
            if robust:
                # Estimate-only candidates carry no Monte Carlo stats;
                # a dash, not format_table's None → "OOM" rendering.
                row.append(
                    "-" if c.robust_time is None else round(c.robust_time, 3)
                )
            rows.append(row)
        title = (
            f"Schedule plan — {self.parallel.pipeline_size} devices, "
            f"vocab {self.model.vocab_size // 1024}k, "
            f"seq {self.model.seq_length}, "
            f"m={self.parallel.num_microbatches}, "
            f"budget {self.memory_budget_gib:.4g} GiB"
        )
        if self.scenario is not None:
            title += f", scenario {self.scenario.name}"
        if self.cost_model != "analytic":
            title += f", cost model {self.cost_model}"
        headers = ["rank", "method", "source", "time(s)", "MFU%", "peakGB"]
        if robust:
            headers.append(f"{self.robustness.rank_by}(s)")
        text = format_table(headers, rows, title=title)
        if self.trust_skipped:
            text += (
                "\ntrust-gated: skipped simulating "
                + ", ".join(self.trust_skipped)
                + " (estimate margin exceeds calibrated model error)"
            )
        if self.rejected:
            lines = [text, "rejected:"]
            for c in self.rejected:
                lines.append(f"  {c.method:15s} {c.reason}")
            text = "\n".join(lines)
        return text


def _budget_gib(
    constraints: PlannerConstraints, hardware: HardwareModel
) -> float:
    if constraints.memory_budget_gib is not None:
        return constraints.memory_budget_gib
    return hardware.memory_bytes / GiB


def _rejected_on_estimate(
    method: str,
    estimated_time: float,
    estimated_peak_gb: float,
    budget_gib: float,
) -> PlanCandidate:
    """Rejection record for a candidate whose *estimate* blew the budget."""
    return PlanCandidate(
        method=method,
        feasible=False,
        source="estimate",
        reason=(
            f"estimated peak {estimated_peak_gb:.1f} GiB exceeds "
            f"budget {budget_gib:.1f} GiB"
        ),
        estimated_time=estimated_time,
        estimated_peak_gb=estimated_peak_gb,
    )


def _estimate_digest(
    method: str,
    model: ModelConfig,
    parallel: ParallelConfig,
    hardware: HardwareModel,
    memory_model: MemoryModel,
    pass_overhead: float | None,
    cost_model_digest: str,
) -> str:
    """Budget-independent key of one method's analytic estimate.

    Excludes the planner constraints on purpose: grid points that share
    a schedule structure and runtime binding but differ in memory
    budget (or top-k effort) resolve to the same entry, so a budget
    sweep prices each method exactly once.  ``hardware`` is the setup's
    *effective* hardware — a scenario's interconnect tiers land here,
    while its device speeds and jitter never enter the analytic
    estimate, so scenarios that only differ in those deliberately share
    estimate entries.  The cost-model *content* digest is part of the
    key: two profiles (even two fits of the same SKU) never share
    priced estimates.
    """
    return config_digest(
        "estimate", method, model, parallel, hardware, memory_model,
        pass_overhead, cost_model_digest, PLANNER_VERSION,
    )


def _metrics_digest(
    method: str,
    structure_signature: tuple,
    model: ModelConfig,
    parallel: ParallelConfig,
    hardware: HardwareModel,
    memory_model: MemoryModel,
    pass_overhead: float | None,
    refine: bool,
    scenario_signature: tuple | None = None,
) -> str:
    """Budget-independent key of one method's simulated metrics.

    Keyed on the generated schedule's runtime-independent
    :meth:`~repro.scheduling.schedule.Schedule.structure_signature`
    plus the runtime binding — everything the simulation depends on,
    and nothing the ranking-only knobs (budget, top-k) touch.  The
    scenario signature is part of the binding: metrics simulated on the
    nominal cluster are never served for a perturbed one (or between
    two different perturbations).
    """
    return config_digest(
        "metrics", method, list(map(repr, structure_signature)), model,
        parallel, hardware, memory_model, pass_overhead, refine,
        scenario_signature, PLANNER_VERSION,
    )


def _robust_digest(
    method: str,
    structure_signature: tuple,
    model: ModelConfig,
    parallel: ParallelConfig,
    hardware: HardwareModel,
    pass_overhead: float | None,
    refine: bool,
    scenario_signature: tuple | None,
    robustness: RobustnessObjective,
) -> str:
    """Budget-independent key of one method's Monte Carlo statistics."""
    return config_digest(
        "robust", method, list(map(repr, structure_signature)), model,
        parallel, hardware, pass_overhead, refine, scenario_signature,
        robustness.as_dict(), PLANNER_VERSION,
    )


def _trust_gated_indexes(
    priced: list,
    top_k: int,
    cost_model: CostModel,
    *,
    scenario_name: str | None,
    robustness: RobustnessObjective | None,
    budget_gib: float,
) -> frozenset[int]:
    """Indexes within the top-k whose simulation a calibrated model skips.

    A candidate may be skipped only when the proof is airtight under
    the profile's own accuracy report: its estimate deflated by
    :data:`TRUST_SAFETY` × its family's max relative error still
    exceeds the leader's estimate inflated the same way, so the
    simulator could not rank it first.  Everything else falls back to
    today's behaviour — uncalibrated/stale profiles (no error bounds),
    scenarios the report does not cover, Monte Carlo ranking (the
    quantile is not bounded by nominal error), memory-borderline
    candidates (their fate is the simulated peak, not the time), and
    the leader itself (something must always be verified).
    """
    if top_k <= 1 or robustness is not None or not cost_model.calibrated:
        return frozenset()
    scenario_key = scenario_name  # report rows: "nominal" or the scenario name
    leader = priced[0][0]
    leader_error = cost_model.error_bound(leader.method, scenario_key)
    if leader_error is None or leader.estimated_peak_gb > budget_gib:
        return frozenset()
    leader_upper = leader.estimated_time * (1.0 + TRUST_SAFETY * leader_error)
    gated = set()
    for index in range(1, top_k):
        candidate = priced[index][0]
        if candidate.estimated_peak_gb > budget_gib:
            continue
        error = cost_model.error_bound(candidate.method, scenario_key)
        if error is None:
            continue
        lower = candidate.estimated_time * (1.0 - TRUST_SAFETY * error)
        if lower > leader_upper:
            gated.add(index)
    return frozenset(gated)


def plan_cache_key(
    model: ModelConfig,
    parallel: ParallelConfig,
    constraints: PlannerConstraints | None = None,
    *,
    hardware: HardwareModel = A100_SXM_80G,
    memory_model: MemoryModel | None = None,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    robustness: RobustnessObjective | str | None = None,
) -> str:
    """The whole-plan digest :func:`plan` stores its result under.

    Public so cache *tiers* in front of the planner (the serving
    layer's in-process LRU, the disk-backed :class:`PlanCache`) can
    address an entry without planning it: the key is a pure function of
    the same inputs, normalized exactly the way :func:`plan` normalizes
    them (default constraints/memory model, scenario and robustness
    resolved by name).
    """
    constraints = constraints or PlannerConstraints()
    memory_model = memory_model or MemoryModel()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if isinstance(robustness, str):
        robustness = RobustnessObjective(rank_by=robustness)
    scenario_sig = None if scenario is None else scenario.signature()
    # The *content* digest of the named profile, not just its name: a
    # re-fitted profile under the same name invalidates instead of
    # aliasing stale plans.
    cost_model_digest = resolve_cost_model(constraints.cost_model).digest()
    return config_digest(
        model, parallel, constraints, hardware, memory_model,
        pass_overhead, scenario_sig,
        None if robustness is None else robustness.as_dict(),
        cost_model_digest, PLANNER_VERSION,
    )


def plan(
    model: ModelConfig,
    parallel: ParallelConfig,
    constraints: PlannerConstraints | None = None,
    *,
    hardware: HardwareModel = A100_SXM_80G,
    memory_model: MemoryModel | None = None,
    cache: PlanCache | None = None,
    pass_overhead: float | None = None,
    scenario: ClusterScenario | str | None = None,
    robustness: RobustnessObjective | str | None = None,
) -> RankedPlans:
    """Choose a pipeline schedule for ``model`` on ``parallel`` devices.

    Deterministic for a fixed input: candidate enumeration order,
    analytic pricing, simulation and all tie-breaks (estimated time,
    then method name) are pure functions of the arguments.  Results
    are cached in ``cache`` (default: a process-wide
    :class:`~repro.planner.cache.PlanCache`) keyed on a digest of every
    input, so a repeated call returns the stored object unchanged.

    Besides the whole-plan entry, per-method analytic estimates and
    simulated metrics are cached under **budget-independent** auxiliary
    keys (see :meth:`~repro.planner.cache.PlanCache.get_aux`): planning
    the same structure under a different memory budget re-ranks cached
    prices instead of re-estimating and re-simulating.

    ``pass_overhead`` overrides the fixed per-pass host overhead of the
    :class:`~repro.sim.SimulationSetup` binding (``None`` keeps the
    default), which is how sweeps explore overhead ablations without
    rebuilding schedule structures.

    ``scenario`` re-prices the whole plan for a non-ideal cluster — a
    :class:`~repro.scenarios.cluster.ClusterScenario` or the name of a
    registered one (``"slow-node"``, …).  Analytic estimates see the
    scenario's interconnect tiers; the top-k simulations additionally
    apply its device speeds.  ``robustness`` (a
    :class:`~repro.scenarios.perturb.RobustnessObjective`, or a
    quantile name like ``"p95"``) switches the ranking of simulated
    candidates to the chosen quantile of the scenario's seeded-jitter
    Monte Carlo instead of the nominal iteration time; it requires a
    scenario.  Every cache entry — whole-plan, metrics, Monte Carlo —
    is keyed on the scenario signature, so nominal and perturbed
    plans never share priced results.
    """
    constraints = constraints or PlannerConstraints()
    memory_model = memory_model or MemoryModel()
    cache = cache if cache is not None else _DEFAULT_CACHE
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if isinstance(robustness, str):
        robustness = RobustnessObjective(rank_by=robustness)
    if robustness is not None and scenario is None:
        raise ValueError(
            "robustness ranking requires a scenario (the jitter source); "
            "pass scenario='high-jitter' or another registered scenario"
        )
    scenario_sig = None if scenario is None else scenario.signature()
    key = plan_cache_key(
        model, parallel, constraints, hardware=hardware,
        memory_model=memory_model, pass_overhead=pass_overhead,
        scenario=scenario, robustness=robustness,
    )
    cached = cache.get(key)
    if cached is not None:
        return cached

    budget_gib = _budget_gib(constraints, hardware)
    budget_bytes = budget_gib * GiB
    methods = constraints.methods or KNOWN_METHODS
    cost_model = resolve_cost_model(constraints.cost_model)
    cost_model_digest = cost_model.digest()
    setup_kwargs = {} if pass_overhead is None else {"pass_overhead": pass_overhead}
    setup = SimulationSetup(model, parallel, hardware=hardware, **setup_kwargs)
    # The scenario's interconnect lowered into the setup; device speeds
    # and jitter apply later, at runtime-binding / Monte Carlo time.
    priced_setup = setup if scenario is None else scenario.setup_for(setup)

    rejected: list[PlanCandidate] = []
    priced: list[tuple[PlanCandidate, object]] = []
    for method in methods:
        reason = infeasibility_reason(method, model, parallel)
        if reason is not None:
            rejected.append(
                PlanCandidate(
                    method=method, feasible=False, source="structural", reason=reason
                )
            )
            continue
        est_key = _estimate_digest(
            method, model, parallel, priced_setup.hardware, memory_model,
            pass_overhead, cost_model_digest,
        )
        est = cache.get_aux("estimate", est_key)
        if est is None:
            est = estimate_method(method, priced_setup, memory_model, cost_model)
            cache.put_aux("estimate", est_key, est)
        candidate = PlanCandidate(
            method=method,
            feasible=True,
            source="estimate",
            iteration_time=est.iteration_time,
            peak_memory_gb=est.peak_bytes / GiB,
            mfu=mfu(model, parallel, hardware, est.iteration_time),
            estimated_time=est.iteration_time,
            estimated_peak_gb=est.peak_bytes / GiB,
        )
        if est.peak_bytes > budget_bytes * constraints.estimate_margin:
            rejected.append(
                _rejected_on_estimate(
                    method, est.iteration_time, est.peak_bytes / GiB, budget_gib
                )
            )
            continue
        priced.append((candidate, est))

    # Deterministic order: estimated time, then name as tie-break.
    priced.sort(key=lambda item: (item[0].estimated_time, item[0].method))
    top_k = (
        len(priced)
        if constraints.simulate_top_k is None
        else min(constraints.simulate_top_k, len(priced))
    )
    gated = _trust_gated_indexes(
        priced, top_k, cost_model,
        scenario_name=None if scenario is None else scenario.name,
        robustness=robustness,
        budget_gib=budget_gib,
    )

    def needs_simulation(index: int, candidate: PlanCandidate) -> bool:
        if top_k == 0:
            return False
        if index < top_k:
            # Trust-gated shrink: a calibrated profile's error bound
            # already proved this candidate loses to the leader.
            return index not in gated
        # Borderline memory (over budget but within the margin) can only
        # be settled by the simulator — the estimate is ~1 GiB accurate.
        return candidate.estimated_peak_gb > budget_gib

    simulated: list[PlanCandidate] = []
    estimated: list[PlanCandidate] = []
    # Shared across the top-k loop: candidates whose generated schedules
    # are structurally identical (equal ``Schedule.structure_key``, e.g.
    # Redis collapsing onto the baseline layout) are simulated once and
    # the metrics reused; ``run_method`` also shares one compiled graph
    # across refinement and measurement within each simulation.
    sim_cache: dict = {}
    for index, (candidate, _) in enumerate(priced):
        if needs_simulation(index, candidate):
            signature = generate_method_schedule(
                candidate.method, priced_setup
            ).structure_signature()
            sim_key = _metrics_digest(
                candidate.method, signature, model, parallel,
                priced_setup.hardware, memory_model, pass_overhead,
                constraints.refine, scenario_sig,
            )
            metrics = cache.get_aux("metrics", sim_key)
            if metrics is None:
                metrics = run_method(
                    candidate.method,
                    model,
                    parallel,
                    setup=setup,
                    memory_model=memory_model,
                    refine=constraints.refine,
                    sim_cache=sim_cache,
                    scenario=scenario,
                )
                # Store a clone: MethodMetrics carries a mutable list.
                cache.put_aux(
                    "metrics",
                    sim_key,
                    dataclasses.replace(
                        metrics,
                        per_device_peak_gb=list(metrics.per_device_peak_gb),
                    ),
                )
            feasible = metrics.peak_memory_gb <= budget_gib
            robust_time = None
            robust_stats = None
            if robustness is not None and feasible:
                rob_key = _robust_digest(
                    candidate.method, signature, model, parallel,
                    priced_setup.hardware, pass_overhead,
                    constraints.refine, scenario_sig, robustness,
                )
                robust_stats = cache.get_aux("robust", rob_key)
                if robust_stats is None:
                    robust_stats = method_robustness(
                        candidate.method,
                        model,
                        parallel,
                        scenario,
                        setup=setup,
                        samples=robustness.samples,
                        seed=robustness.seed,
                        refine=constraints.refine,
                    )
                    cache.put_aux("robust", rob_key, robust_stats)
                robust_time = robust_stats.quantile_time(robustness.rank_by)
            verified = PlanCandidate(
                method=candidate.method,
                feasible=feasible,
                source="sim",
                iteration_time=metrics.iteration_time,
                peak_memory_gb=metrics.peak_memory_gb,
                mfu=metrics.mfu,
                estimated_time=candidate.estimated_time,
                estimated_peak_gb=candidate.estimated_peak_gb,
                robust_time=robust_time,
                robust_stats=robust_stats,
                reason=(
                    ""
                    if feasible
                    else (
                        f"simulated peak {metrics.peak_memory_gb:.1f} GiB exceeds "
                        f"budget {budget_gib:.1f} GiB"
                    )
                ),
            )
            (simulated if verified.feasible else rejected).append(verified)
        else:
            if candidate.estimated_peak_gb > budget_gib:
                rejected.append(
                    _rejected_on_estimate(
                        candidate.method,
                        candidate.estimated_time,
                        candidate.estimated_peak_gb,
                        budget_gib,
                    )
                )
            else:
                estimated.append(candidate)

    # Robust mode ranks simulated candidates by the Monte Carlo
    # quantile; nominal mode (and estimate-only candidates) by the
    # deterministic iteration time.  Method name breaks ties either way.
    simulated.sort(
        key=lambda c: (
            c.iteration_time if c.robust_time is None else c.robust_time,
            c.method,
        )
    )
    estimated.sort(key=lambda c: (c.iteration_time, c.method))
    plans = RankedPlans(
        model=model,
        parallel=parallel,
        constraints=constraints,
        memory_budget_gib=budget_gib,
        ranked=tuple(simulated + estimated),
        rejected=tuple(rejected),
        cache_key=key,
        pass_overhead=pass_overhead,
        scenario=scenario,
        robustness=robustness,
        cost_model=cost_model.name,
        trust_gated=bool(gated),
        trust_skipped=tuple(priced[i][0].method for i in sorted(gated)),
    )
    cache.put(key, plans)
    return plans
