"""Run one method on one setting: the paper's §6 measurement pipeline.

For each method the runner (1) profiles pass durations from the cost
model (the paper's §6.1 profiling step), (2) generates the schedule
from its building block, (3) refines the order through a
work-conserving simulation pass, (4) executes in-order, and (5) reports
MFU, peak memory, balance and bubble metrics.  OOM configurations are
reported with ``oom=True`` rather than being dropped, so sweeps can
mark them the way the paper's figures do.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig, layers_per_stage
from repro.costmodel.memory import GiB, MemoryModel
from repro.costmodel.mfu import mfu
from repro.scheduling import (
    Schedule,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_interlaced,
    generate_vhalf,
    generate_vhalf_vocab,
    redistribute_layers,
)
from repro.sim import (
    ExecutionResult,
    PassTimings,
    RuntimeModel,
    SimulationSetup,
    compile_schedule,
    execute_schedule,
    memory_report,
    refine_schedule_order,
    simulation_engine,
)

#: All method names understood by :func:`run_method`.
KNOWN_METHODS = (
    "baseline",
    "redis",
    "vocab-1",
    "vocab-2",
    "interlaced",
    "vhalf-baseline",
    "vhalf-vocab-1",
    "vhalf-vocab-2",
)


@dataclass
class MethodMetrics:
    """Everything Tables 5/6 and Figures 11–14 report for one run."""

    method: str
    mfu: float
    iteration_time: float
    peak_memory_gb: float
    per_device_peak_gb: list[float]
    memory_spread_gb: float
    mean_bubble: float
    oom: bool

    @property
    def mfu_percent(self) -> float:
        return 100.0 * self.mfu


# ---------------------------------------------------------------------------
# Structural caches: schedule generation and compiled-graph lowering are
# pure functions of a small structural key, so both are memoized
# process-wide.  A sweep whose grid points share a schedule structure
# (same family/model/parallel shape, different memory budgets or
# pass-overhead bindings) then builds each structure once and re-prices
# it per binding via CompiledGraph.rebind / execute_many.
# ---------------------------------------------------------------------------

_CACHE_LOCK = threading.Lock()
_SCHEDULE_CACHE: OrderedDict[tuple, Schedule] = OrderedDict()
_GRAPH_CACHE: OrderedDict[tuple, object] = OrderedDict()
_SCHEDULE_CACHE_LIMIT = 256
_GRAPH_CACHE_LIMIT = 64
_CACHE_STATS = {
    "schedule_hits": 0,
    "schedule_misses": 0,
    "graph_hits": 0,
    "graph_misses": 0,
}


def structural_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the process-wide structural caches (a copy)."""
    with _CACHE_LOCK:
        return dict(_CACHE_STATS)


def clear_structural_caches() -> None:
    """Drop all cached schedules and compiled graphs; reset counters."""
    with _CACHE_LOCK:
        _SCHEDULE_CACHE.clear()
        _GRAPH_CACHE.clear()
        for key in _CACHE_STATS:
            _CACHE_STATS[key] = 0


def _generation_timings(method: str, setup: SimulationSetup) -> tuple[float, ...]:
    """The timing scalars ``method``'s generator consumes, in order.

    These are the *only* hardware-dependent inputs of schedule
    generation — the generators place passes from a handful of nominal
    durations — so (method, model, parallel shape, these scalars) is an
    exact cache key: two setups mapping to the same scalars generate
    identical schedules, whatever hardware produced them.

    KEEP IN SYNC with :func:`_generate_method_schedule_uncached`: if a
    generator starts consuming another setup-dependent input, it must
    be added here too, or the cache will conflate setups that differ in
    that input and silently return the wrong schedule.
    """
    model = setup.model
    parallel = setup.parallel
    p = parallel.pipeline_size
    timings = PassTimings(setup)
    if method in ("baseline", "redis", "vocab-1", "vocab-2", "interlaced"):
        per_stage = layers_per_stage(model, parallel)
        scalars = [
            timings.transformer_forward_time(per_stage),
            timings.transformer_backward_time(per_stage, split_weight=False),
        ]
        if method in ("vocab-1", "vocab-2"):
            algorithm = 1 if method == "vocab-1" else 2
            scalars += [timings.s_pass_time(algorithm), timings.t_pass_time(algorithm)]
        elif method == "interlaced":
            scalars += [timings.interlaced_vf_time(), timings.interlaced_vb_time()]
    elif method in ("vhalf-baseline", "vhalf-vocab-1", "vhalf-vocab-2"):
        if model.num_layers % (2 * p) != 0:
            raise ValueError(
                f"V-Half needs layers divisible by 2p; got {model.num_layers}, p={p}"
            )
        per_chunk = model.num_layers // (2 * p)
        scalars = [
            timings.transformer_forward_time(per_chunk),
            timings.transformer_backward_time(per_chunk, split_weight=True),
            timings.transformer_weight_time(per_chunk),
        ]
        if method != "vhalf-baseline":
            algorithm = 1 if method == "vhalf-vocab-1" else 2
            scalars += [timings.s_pass_time(algorithm), timings.t_pass_time(algorithm)]
    else:
        raise ValueError(f"unknown method {method!r}; expected one of {KNOWN_METHODS}")
    return tuple(scalars)


def _clone_schedule(schedule: Schedule) -> Schedule:
    """Defensive copy: shared structure, private orders and metadata.

    Cached schedules must never leak mutable state — callers reorder
    ``device_orders`` in place (refinement, tests) and stash entries in
    ``metadata``.
    """
    return dataclasses.replace(
        schedule,
        device_orders=[list(order) for order in schedule.device_orders],
        metadata=dict(schedule.metadata),
    )


def generate_method_schedule(method: str, setup: SimulationSetup) -> Schedule:
    """Generate the nominal (unrefined) schedule for a method.

    Memoized process-wide on the structural generation key (method,
    model, parallel shape, generator timing scalars); hits return a
    defensive copy of the cached schedule, so repeated planner/sweep
    calls over the same structure skip generation entirely.
    """
    key = (
        method,
        setup.model,
        setup.parallel.pipeline_size,
        setup.parallel.num_microbatches,
        setup.parallel.microbatch_size,
        _generation_timings(method, setup),
    )
    with _CACHE_LOCK:
        cached = _SCHEDULE_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["schedule_hits"] += 1
            _SCHEDULE_CACHE.move_to_end(key)
            return _clone_schedule(cached)
    schedule = _generate_method_schedule_uncached(method, setup)
    with _CACHE_LOCK:
        _CACHE_STATS["schedule_misses"] += 1
        _SCHEDULE_CACHE[key] = _clone_schedule(schedule)
        while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_LIMIT:
            _SCHEDULE_CACHE.popitem(last=False)
    return schedule


def _generate_method_schedule_uncached(
    method: str, setup: SimulationSetup
) -> Schedule:
    """The actual schedule construction (one per structural key)."""
    model = setup.model
    parallel = setup.parallel
    p = parallel.pipeline_size
    m = parallel.num_microbatches
    timings = PassTimings(setup)
    if method in ("baseline", "redis", "vocab-1", "vocab-2", "interlaced"):
        per_stage = layers_per_stage(model, parallel)
        t_f = timings.transformer_forward_time(per_stage)
        t_b = timings.transformer_backward_time(per_stage, split_weight=False)
        if method == "baseline":
            schedule = generate_1f1b(
                p, m, num_layers=model.num_layers, t_forward=t_f, t_backward=t_b
            )
        elif method == "redis":
            plan = redistribute_layers(model, p, parallel.microbatch_size)
            schedule = generate_1f1b(
                p,
                m,
                layout=plan.layout(),
                t_forward=t_f,
                t_backward=t_b,
                name="1f1b-redis",
            )
            schedule.metadata["redistribution"] = plan
        elif method in ("vocab-1", "vocab-2"):
            algorithm = 1 if method == "vocab-1" else 2
            schedule = generate_1f1b_vocab(
                p,
                m,
                model.num_layers,
                algorithm,
                t_forward=t_f,
                t_backward=t_b,
                t_s=timings.s_pass_time(algorithm),
                t_t=timings.t_pass_time(algorithm),
            )
        else:
            schedule = generate_interlaced(
                p,
                m,
                model.num_layers,
                t_forward=t_f,
                t_backward=t_b,
                t_vf=timings.interlaced_vf_time(),
                t_vb=timings.interlaced_vb_time(),
            )
    elif method in ("vhalf-baseline", "vhalf-vocab-1", "vhalf-vocab-2"):
        if model.num_layers % (2 * p) != 0:
            raise ValueError(
                f"V-Half needs layers divisible by 2p; got {model.num_layers}, p={p}"
            )
        per_chunk = model.num_layers // (2 * p)
        f_c = timings.transformer_forward_time(per_chunk)
        b_c = timings.transformer_backward_time(per_chunk, split_weight=True)
        w_c = timings.transformer_weight_time(per_chunk)
        if method == "vhalf-baseline":
            schedule = generate_vhalf(
                p,
                m,
                model.num_layers,
                t_forward_chunk=f_c,
                t_backward_chunk=b_c,
                t_weight_chunk=w_c,
            )
        else:
            algorithm = 1 if method == "vhalf-vocab-1" else 2
            schedule = generate_vhalf_vocab(
                p,
                m,
                model.num_layers,
                algorithm=algorithm,
                t_forward_chunk=f_c,
                t_backward_chunk=b_c,
                t_weight_chunk=w_c,
                t_s=timings.s_pass_time(algorithm),
                t_t=timings.t_pass_time(algorithm),
            )
    else:
        raise ValueError(f"unknown method {method!r}; expected one of {KNOWN_METHODS}")
    return schedule


def _scenario_setup(setup: SimulationSetup, scenario) -> SimulationSetup:
    """Apply a cluster scenario's interconnect transform exactly once.

    ``scenario`` is duck-typed (a
    :class:`~repro.scenarios.cluster.ClusterScenario` or anything with
    the same ``setup_for``/``wrap_runtime``/``signature`` surface), so
    this module never imports :mod:`repro.scenarios` — the dependency
    points the other way.
    """
    return setup if scenario is None else scenario.setup_for(setup)


def _scenario_runtime(
    setup: SimulationSetup, schedule: Schedule, scenario
) -> RuntimeModel:
    """Runtime binding for ``schedule``, scenario speeds applied on top.

    ``setup`` must already be the scenario setup
    (:func:`_scenario_setup`) so interconnect tiers are priced in.
    """
    runtime = RuntimeModel(setup, schedule)
    return runtime if scenario is None else scenario.wrap_runtime(runtime)


def _scenario_signature(scenario) -> tuple | None:
    """Cache-key component for a scenario (``None`` = nominal)."""
    return None if scenario is None else scenario.signature()


def _wants_refinement(schedule: Schedule) -> bool:
    # Baseline/Redis orders are the canonical 1F1B already; the
    # interlaced schedule is a rigid synchronous design (Figure 15b)
    # with nothing flexible to reorder.  The Vocabulary Parallelism
    # schedules profit from the profiling-style refinement; the V-Half
    # family additionally allows F/B reordering (zero-bubble design).
    return schedule.vocab_algorithm is not None or schedule.has_weight_passes


def _refine_mode(schedule: Schedule) -> str:
    return "zero-bubble" if schedule.has_weight_passes else "strict"


def _compile_cached(schedule: Schedule, runtime: RuntimeModel):
    """Compiled graph for ``schedule``, re-bound from the structural cache.

    Keyed on :meth:`~repro.scheduling.schedule.Schedule.structure_key`:
    the first request lowers the graph, later requests for the same
    structure (any runtime binding) reuse the lowering — and its cached
    topological order — via :meth:`~repro.sim.compiled.CompiledGraph.rebind`.
    """
    key = schedule.structure_key()
    with _CACHE_LOCK:
        cached = _GRAPH_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["graph_hits"] += 1
            _GRAPH_CACHE.move_to_end(key)
    if cached is not None:
        return cached.rebind(runtime, schedule=schedule)
    graph = compile_schedule(schedule, runtime)
    with _CACHE_LOCK:
        _CACHE_STATS["graph_misses"] += 1
        _GRAPH_CACHE[key] = graph
        while len(_GRAPH_CACHE) > _GRAPH_CACHE_LIMIT:
            _GRAPH_CACHE.popitem(last=False)
    return graph


def compiled_graph_for(schedule: Schedule, runtime):
    """Public handle on the structural compiled-graph cache.

    Returns a :class:`~repro.sim.compiled.CompiledGraph` for
    ``schedule`` bound to ``runtime`` — re-lowering only on the first
    request per :meth:`~repro.scheduling.schedule.Schedule.structure_key`.
    The binding is always the caller's: a hit is re-priced through
    :meth:`~repro.sim.compiled.CompiledGraph.rebind`, so a graph cached
    under one runtime (a homogeneous binding, say) is never served
    with its old durations to a different one (a cluster scenario).
    """
    return _compile_cached(schedule, runtime)


def build_schedule(
    method: str,
    setup: SimulationSetup,
    refine: bool = True,
    scenario=None,
) -> Schedule:
    """Generate (and optionally order-refine) the schedule for a method.

    ``scenario`` (a :class:`~repro.scenarios.cluster.ClusterScenario`)
    perturbs the runtime the refinement pass prices against — a
    straggler-aware refinement can legitimately choose a different
    order.  ``setup`` is the nominal setup; the scenario transform is
    applied here.
    """
    setup = _scenario_setup(setup, scenario)
    schedule = generate_method_schedule(method, setup)
    if refine and _wants_refinement(schedule):
        runtime = _scenario_runtime(setup, schedule, scenario)
        if simulation_engine() == "reference":
            schedule = refine_schedule_order(
                schedule, runtime, mode=_refine_mode(schedule)
            )
        else:
            schedule, _, _ = _compile_cached(schedule, runtime).refine(
                mode=_refine_mode(schedule)
            )
    return schedule


def _simulate(
    schedule: Schedule, setup: SimulationSetup, refine: bool, scenario=None
) -> tuple[Schedule, ExecutionResult]:
    """Refine (optionally) and execute in-order, sharing one compiled graph.

    Under the compiled engine the schedule is lowered once; refinement's
    dataflow run, its before/after checks, and the final in-order result
    all replay that graph — where the pre-compiled flow executed the
    schedule up to five times from scratch.  The reference engine keeps
    the original execute-from-scratch behaviour for oracle comparisons.
    ``setup`` must already be the scenario setup when ``scenario`` is
    given (callers go through :func:`_scenario_setup`).
    """
    runtime = _scenario_runtime(setup, schedule, scenario)
    wants_refine = refine and _wants_refinement(schedule)
    if simulation_engine() == "reference":
        if wants_refine:
            schedule = refine_schedule_order(
                schedule, runtime, mode=_refine_mode(schedule)
            )
            runtime = _scenario_runtime(setup, schedule, scenario)
        return schedule, execute_schedule(schedule, runtime)
    graph = _compile_cached(schedule, runtime)
    if wants_refine:
        schedule, result, _ = graph.refine(mode=_refine_mode(schedule))
        return schedule, result
    return schedule, graph.execute()


def _metrics_from(
    method: str,
    model: ModelConfig,
    parallel: ParallelConfig,
    setup: SimulationSetup,
    memory_model: MemoryModel | None,
    result: ExecutionResult,
) -> MethodMetrics:
    """Assemble :class:`MethodMetrics` from one execution result."""
    report = memory_report(result, setup, memory_model)
    return MethodMetrics(
        method=method,
        mfu=mfu(model, parallel, setup.hardware, result.iteration_time),
        iteration_time=result.iteration_time,
        peak_memory_gb=report.peak / GiB,
        per_device_peak_gb=[b / GiB for b in report.per_device_peak],
        memory_spread_gb=report.spread / GiB,
        mean_bubble=result.mean_bubble_fraction(),
        oom=not report.fits(setup.hardware.memory_bytes),
    )


def run_method_bindings(
    method: str,
    model: ModelConfig,
    parallel: ParallelConfig,
    setups: list[SimulationSetup],
    memory_model: MemoryModel | None = None,
    refine: bool = True,
    scenario=None,
) -> list[MethodMetrics]:
    """Simulate one method under many runtime bindings in one batch.

    All ``setups`` must share ``model`` and ``parallel`` and differ only
    in their runtime binding (hardware, efficiency, ``pass_overhead``).
    Bindings whose generated schedules share a
    :meth:`~repro.scheduling.schedule.Schedule.structure_key` are priced
    through one compiled graph and executed together with
    :meth:`~repro.sim.compiled.CompiledGraph.execute_many`.  Bindings
    that want order refinement fall back to :func:`run_method` — the
    refinement's work-conserving run is a stateful per-binding
    simulation that cannot be batched — as does the reference engine.
    ``scenario`` applies one cluster scenario to every binding
    (nominal ``setups``; transformed here).
    """
    for setup in setups:
        if setup.model != model or setup.parallel != parallel:
            raise ValueError(
                "run_method_bindings requires every setup to share the "
                "model and parallel configuration; only the runtime "
                "binding may differ"
            )
    metrics: list[MethodMetrics | None] = [None] * len(setups)
    bound_setups = [_scenario_setup(setup, scenario) for setup in setups]
    schedules = [
        generate_method_schedule(method, setup) for setup in bound_setups
    ]
    batchable: dict[tuple, list[int]] = {}
    for index, schedule in enumerate(schedules):
        if (refine and _wants_refinement(schedule)) or (
            simulation_engine() == "reference"
        ):
            metrics[index] = run_method(
                method,
                model,
                parallel,
                setup=setups[index],
                memory_model=memory_model,
                refine=refine,
                scenario=scenario,
            )
        else:
            batchable.setdefault(schedule.structure_key(), []).append(index)
    for indices in batchable.values():
        first = indices[0]
        runtimes = [
            _scenario_runtime(bound_setups[i], schedules[i], scenario)
            for i in indices
        ]
        graph = _compile_cached(schedules[first], runtimes[0])
        results = graph.execute_bindings(runtimes)
        for i, result in zip(indices, results):
            metrics[i] = _metrics_from(
                method, model, parallel, bound_setups[i], memory_model, result
            )
    return metrics  # type: ignore[return-value]


def run_method(
    method: str,
    model: ModelConfig,
    parallel: ParallelConfig,
    setup: SimulationSetup | None = None,
    memory_model: MemoryModel | None = None,
    refine: bool = True,
    sim_cache: dict | None = None,
    scenario=None,
) -> MethodMetrics:
    """Simulate one method end-to-end and collect its metrics.

    ``sim_cache`` (any mutable mapping) deduplicates structurally
    identical candidates: when two methods generate schedules with equal
    :meth:`~repro.scheduling.schedule.Schedule.structure_key` — e.g.
    Redis degenerating to the baseline layout on a small vocabulary —
    the second simulation is skipped and the stored metrics are reused.
    Callers must use one cache per (setup, memory_model) pairing; the
    planner's top-k loop does exactly that.

    ``scenario`` (a :class:`~repro.scenarios.cluster.ClusterScenario`)
    re-prices the run for a non-ideal cluster.  The scenario's
    signature is part of the ``sim_cache`` key: structurally identical
    schedules priced under *different* scenarios never share metrics,
    so a homogeneous result cannot be served for a perturbed cluster.
    """
    setup = _scenario_setup(setup or SimulationSetup(model, parallel), scenario)
    schedule = generate_method_schedule(method, setup)
    key = (
        schedule.structure_key(),
        bool(refine),
        _scenario_signature(scenario),
    )
    if sim_cache is not None:
        cached = sim_cache.get(key)
        if cached is not None:
            return dataclasses.replace(
                cached,
                method=method,
                per_device_peak_gb=list(cached.per_device_peak_gb),
            )
    schedule, result = _simulate(schedule, setup, refine, scenario)
    metrics = _metrics_from(method, model, parallel, setup, memory_model, result)
    if sim_cache is not None:
        # Store a clone, not the returned object: a caller mutating its
        # result (per_device_peak_gb is a plain list) must not poison
        # later cache hits.
        sim_cache[key] = dataclasses.replace(
            metrics, per_device_peak_gb=list(metrics.per_device_peak_gb)
        )
    return metrics


def vocab_scaling_factor(
    model: ModelConfig,
    pipeline_size: int,
    layer: str,
    algorithm: int | None = None,
) -> float:
    """Table 3's scaling factor relative to linear scaling, in [0, ~1].

    ``layer`` is ``"output"`` (requires ``algorithm``) or ``"input"``.
    The reference is the *unpartitioned* layer's time (the "original
    throughput"); ideal linear scaling would make the per-device
    partitioned time exactly ``1/p`` of it.
    """
    sharded = PassTimings(
        SimulationSetup(model, ParallelConfig(pipeline_size=pipeline_size))
    )
    full = PassTimings(SimulationSetup(model, ParallelConfig(pipeline_size=1)))
    if layer == "output":
        if algorithm not in (1, 2):
            raise ValueError("output scaling requires algorithm 1 or 2")
        per_device = sharded.s_pass_time(algorithm) + sharded.t_pass_time(algorithm)
        reference = full.full_output_forward_time() + full.full_output_backward_time()
    elif layer == "input":
        per_device = (
            sharded.partitioned_input_forward_time()
            + sharded.partitioned_input_backward_time()
        )
        reference = full.full_input_forward_time() + full.full_input_backward_time()
    else:
        raise ValueError(f"layer must be 'output' or 'input', got {layer!r}")
    return reference / (pipeline_size * per_device)
