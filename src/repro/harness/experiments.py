"""Run one method on one setting: the paper's §6 measurement pipeline.

For each method the runner (1) profiles pass durations from the cost
model (the paper's §6.1 profiling step), (2) generates the schedule
from its building block, (3) refines the order through a
work-conserving simulation pass, (4) executes in-order, and (5) reports
MFU, peak memory, balance and bubble metrics.  OOM configurations are
reported with ``oom=True`` rather than being dropped, so sweeps can
mark them the way the paper's figures do.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ModelConfig, ParallelConfig, layers_per_stage
from repro.costmodel.memory import GiB, MemoryModel
from repro.costmodel.mfu import mfu
from repro.scheduling import (
    Schedule,
    generate_1f1b,
    generate_1f1b_vocab,
    generate_interlaced,
    generate_vhalf,
    generate_vhalf_vocab,
    redistribute_layers,
)
from repro.sim import (
    ExecutionResult,
    PassTimings,
    RuntimeModel,
    SimulationSetup,
    compile_schedule,
    execute_schedule,
    memory_report,
    refine_schedule_order,
    simulation_engine,
)

#: All method names understood by :func:`run_method`.
KNOWN_METHODS = (
    "baseline",
    "redis",
    "vocab-1",
    "vocab-2",
    "interlaced",
    "vhalf-baseline",
    "vhalf-vocab-1",
    "vhalf-vocab-2",
)


@dataclass
class MethodMetrics:
    """Everything Tables 5/6 and Figures 11–14 report for one run."""

    method: str
    mfu: float
    iteration_time: float
    peak_memory_gb: float
    per_device_peak_gb: list[float]
    memory_spread_gb: float
    mean_bubble: float
    oom: bool

    @property
    def mfu_percent(self) -> float:
        return 100.0 * self.mfu


def generate_method_schedule(method: str, setup: SimulationSetup) -> Schedule:
    """Generate the nominal (unrefined) schedule for a method."""
    model = setup.model
    parallel = setup.parallel
    p = parallel.pipeline_size
    m = parallel.num_microbatches
    timings = PassTimings(setup)
    if method in ("baseline", "redis", "vocab-1", "vocab-2", "interlaced"):
        per_stage = layers_per_stage(model, parallel)
        t_f = timings.transformer_forward_time(per_stage)
        t_b = timings.transformer_backward_time(per_stage, split_weight=False)
        if method == "baseline":
            schedule = generate_1f1b(
                p, m, num_layers=model.num_layers, t_forward=t_f, t_backward=t_b
            )
        elif method == "redis":
            plan = redistribute_layers(model, p, parallel.microbatch_size)
            schedule = generate_1f1b(
                p,
                m,
                layout=plan.layout(),
                t_forward=t_f,
                t_backward=t_b,
                name="1f1b-redis",
            )
            schedule.metadata["redistribution"] = plan
        elif method in ("vocab-1", "vocab-2"):
            algorithm = 1 if method == "vocab-1" else 2
            schedule = generate_1f1b_vocab(
                p,
                m,
                model.num_layers,
                algorithm,
                t_forward=t_f,
                t_backward=t_b,
                t_s=timings.s_pass_time(algorithm),
                t_t=timings.t_pass_time(algorithm),
            )
        else:
            schedule = generate_interlaced(
                p,
                m,
                model.num_layers,
                t_forward=t_f,
                t_backward=t_b,
                t_vf=timings.interlaced_vf_time(),
                t_vb=timings.interlaced_vb_time(),
            )
    elif method in ("vhalf-baseline", "vhalf-vocab-1", "vhalf-vocab-2"):
        if model.num_layers % (2 * p) != 0:
            raise ValueError(
                f"V-Half needs layers divisible by 2p; got {model.num_layers}, p={p}"
            )
        per_chunk = model.num_layers // (2 * p)
        f_c = timings.transformer_forward_time(per_chunk)
        b_c = timings.transformer_backward_time(per_chunk, split_weight=True)
        w_c = timings.transformer_weight_time(per_chunk)
        if method == "vhalf-baseline":
            schedule = generate_vhalf(
                p,
                m,
                model.num_layers,
                t_forward_chunk=f_c,
                t_backward_chunk=b_c,
                t_weight_chunk=w_c,
            )
        else:
            algorithm = 1 if method == "vhalf-vocab-1" else 2
            schedule = generate_vhalf_vocab(
                p,
                m,
                model.num_layers,
                algorithm=algorithm,
                t_forward_chunk=f_c,
                t_backward_chunk=b_c,
                t_weight_chunk=w_c,
                t_s=timings.s_pass_time(algorithm),
                t_t=timings.t_pass_time(algorithm),
            )
    else:
        raise ValueError(f"unknown method {method!r}; expected one of {KNOWN_METHODS}")
    return schedule


def _wants_refinement(schedule: Schedule) -> bool:
    # Baseline/Redis orders are the canonical 1F1B already; the
    # interlaced schedule is a rigid synchronous design (Figure 15b)
    # with nothing flexible to reorder.  The Vocabulary Parallelism
    # schedules profit from the profiling-style refinement; the V-Half
    # family additionally allows F/B reordering (zero-bubble design).
    return schedule.vocab_algorithm is not None or schedule.has_weight_passes


def _refine_mode(schedule: Schedule) -> str:
    return "zero-bubble" if schedule.has_weight_passes else "strict"


def build_schedule(
    method: str, setup: SimulationSetup, refine: bool = True
) -> Schedule:
    """Generate (and optionally order-refine) the schedule for a method."""
    schedule = generate_method_schedule(method, setup)
    if refine and _wants_refinement(schedule):
        runtime = RuntimeModel(setup, schedule)
        schedule = refine_schedule_order(
            schedule, runtime, mode=_refine_mode(schedule)
        )
    return schedule


def _simulate(
    schedule: Schedule, setup: SimulationSetup, refine: bool
) -> tuple[Schedule, ExecutionResult]:
    """Refine (optionally) and execute in-order, sharing one compiled graph.

    Under the compiled engine the schedule is lowered once; refinement's
    dataflow run, its before/after checks, and the final in-order result
    all replay that graph — where the pre-compiled flow executed the
    schedule up to five times from scratch.  The reference engine keeps
    the original execute-from-scratch behaviour for oracle comparisons.
    """
    runtime = RuntimeModel(setup, schedule)
    wants_refine = refine and _wants_refinement(schedule)
    if simulation_engine() == "reference":
        if wants_refine:
            schedule = refine_schedule_order(
                schedule, runtime, mode=_refine_mode(schedule)
            )
            runtime = RuntimeModel(setup, schedule)
        return schedule, execute_schedule(schedule, runtime)
    graph = compile_schedule(schedule, runtime)
    if wants_refine:
        schedule, result, _ = graph.refine(mode=_refine_mode(schedule))
        return schedule, result
    return schedule, graph.execute()


def run_method(
    method: str,
    model: ModelConfig,
    parallel: ParallelConfig,
    setup: SimulationSetup | None = None,
    memory_model: MemoryModel | None = None,
    refine: bool = True,
    sim_cache: dict | None = None,
) -> MethodMetrics:
    """Simulate one method end-to-end and collect its metrics.

    ``sim_cache`` (any mutable mapping) deduplicates structurally
    identical candidates: when two methods generate schedules with equal
    :meth:`~repro.scheduling.schedule.Schedule.structure_key` — e.g.
    Redis degenerating to the baseline layout on a small vocabulary —
    the second simulation is skipped and the stored metrics are reused.
    Callers must use one cache per (setup, memory_model) pairing; the
    planner's top-k loop does exactly that.
    """
    setup = setup or SimulationSetup(model, parallel)
    schedule = generate_method_schedule(method, setup)
    key = (schedule.structure_key(), bool(refine))
    if sim_cache is not None:
        cached = sim_cache.get(key)
        if cached is not None:
            return dataclasses.replace(
                cached,
                method=method,
                per_device_peak_gb=list(cached.per_device_peak_gb),
            )
    schedule, result = _simulate(schedule, setup, refine)
    report = memory_report(result, setup, memory_model)
    metrics = MethodMetrics(
        method=method,
        mfu=mfu(model, parallel, setup.hardware, result.iteration_time),
        iteration_time=result.iteration_time,
        peak_memory_gb=report.peak / GiB,
        per_device_peak_gb=[b / GiB for b in report.per_device_peak],
        memory_spread_gb=report.spread / GiB,
        mean_bubble=result.mean_bubble_fraction(),
        oom=not report.fits(setup.hardware.memory_bytes),
    )
    if sim_cache is not None:
        # Store a clone, not the returned object: a caller mutating its
        # result (per_device_peak_gb is a plain list) must not poison
        # later cache hits.
        sim_cache[key] = dataclasses.replace(
            metrics, per_device_peak_gb=list(metrics.per_device_peak_gb)
        )
    return metrics


def vocab_scaling_factor(
    model: ModelConfig,
    pipeline_size: int,
    layer: str,
    algorithm: int | None = None,
) -> float:
    """Table 3's scaling factor relative to linear scaling, in [0, ~1].

    ``layer`` is ``"output"`` (requires ``algorithm``) or ``"input"``.
    The reference is the *unpartitioned* layer's time (the "original
    throughput"); ideal linear scaling would make the per-device
    partitioned time exactly ``1/p`` of it.
    """
    sharded = PassTimings(
        SimulationSetup(model, ParallelConfig(pipeline_size=pipeline_size))
    )
    full = PassTimings(SimulationSetup(model, ParallelConfig(pipeline_size=1)))
    if layer == "output":
        if algorithm not in (1, 2):
            raise ValueError("output scaling requires algorithm 1 or 2")
        per_device = sharded.s_pass_time(algorithm) + sharded.t_pass_time(algorithm)
        reference = full.full_output_forward_time() + full.full_output_backward_time()
    elif layer == "input":
        per_device = (
            sharded.partitioned_input_forward_time()
            + sharded.partitioned_input_backward_time()
        )
        reference = full.full_input_forward_time() + full.full_input_backward_time()
    else:
        raise ValueError(f"layer must be 'output' or 'input', got {layer!r}")
    return reference / (pipeline_size * per_device)
