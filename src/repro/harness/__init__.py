"""Experiment harness: the paper's evaluation settings, method runners,
paper-reported numbers, and table rendering.

Entry points:

* :mod:`repro.harness.settings` — Tables 1/2 model configurations;
* :mod:`repro.harness.experiments` — run one method on one setting
  (schedule generation with profiled durations → refinement → DES →
  MFU / peak memory);
* :mod:`repro.harness.runner` — full sweeps regenerating each table and
  figure, with side-by-side paper numbers;
* :mod:`repro.harness.paper_data` — the numbers printed in the paper's
  Tables 3, 5 and 6 (for comparison columns, never used by the
  simulation itself);
* :mod:`repro.harness.cli` — ``repro-experiments`` command (tables,
  figures, schedule timelines, and the :mod:`repro.planner` ``plan``
  subcommand).
"""

from repro.harness.settings import (
    GEMMA2_9B,
    ONE_F_ONE_B_METHODS,
    VHALF_METHODS,
    VOCAB_SIZES,
    model_for_1f1b,
    model_for_vhalf,
)
from repro.harness.experiments import MethodMetrics, run_method, vocab_scaling_factor
from repro.harness.tables import format_table

__all__ = [
    "GEMMA2_9B",
    "VOCAB_SIZES",
    "ONE_F_ONE_B_METHODS",
    "VHALF_METHODS",
    "model_for_1f1b",
    "model_for_vhalf",
    "MethodMetrics",
    "run_method",
    "vocab_scaling_factor",
    "format_table",
]
