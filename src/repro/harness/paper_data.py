"""Numbers reported in the paper, for side-by-side comparison only.

The simulation never consumes these values; they appear in the
benchmark output and EXPERIMENTS.md so the reproduction's shape can be
checked against the original measurements (the authors ran 8–32 A100s;
we run a calibrated simulator, so absolute agreement is not expected —
orderings, trends and crossovers are).

``None`` marks configurations the paper reports as out-of-memory.
"""

from __future__ import annotations

#: Table 5 — methods on 1F1B.  Key: (gpus, seq, method) →
#: {"mfu": per-vocab list, "mem": per-vocab list}, vocab order
#: 32k/64k/128k/256k.
TABLE5: dict[tuple[int, int, str], dict[str, list[float | None]]] = {
    (8, 2048, "baseline"): {
        "mfu": [46.16, 40.48, 33.11, 25.23],
        "mem": [14.86, 16.32, 19.25, 25.64],
    },
    (8, 2048, "redis"): {
        "mfu": [46.01, 46.37, 44.22, 38.91],
        "mem": [14.86, 16.32, 19.25, 25.64],
    },
    (8, 2048, "vocab-1"): {
        "mfu": [50.42, 50.28, 49.93, 50.12],
        "mem": [15.63, 16.02, 16.84, 18.59],
    },
    (8, 2048, "vocab-2"): {
        "mfu": [50.23, 50.18, 49.82, 49.69],
        "mem": [14.83, 15.23, 16.04, 17.78],
    },
    (8, 2048, "interlaced"): {
        "mfu": [51.18, 50.94, 50.97, 50.92],
        "mem": [17.20, 17.57, 18.43, 20.17],
    },
    (8, 4096, "baseline"): {
        "mfu": [47.05, 41.87, 35.00, 26.75],
        "mem": [21.39, 22.85, 25.78, 31.64],
    },
    (8, 4096, "redis"): {
        "mfu": [46.93, 46.78, 47.44, 43.01],
        "mem": [21.39, 22.85, 25.78, 31.64],
    },
    (8, 4096, "vocab-1"): {
        "mfu": [50.98, 50.98, 50.83, 50.66],
        "mem": [24.04, 24.47, 25.41, 27.34],
    },
    (8, 4096, "vocab-2"): {
        "mfu": [50.93, 50.75, 50.56, 50.40],
        "mem": [22.44, 22.89, 23.80, 25.73],
    },
    (8, 4096, "interlaced"): {
        "mfu": [51.41, 51.82, 51.32, 51.38],
        "mem": [27.20, 27.64, 28.60, 30.53],
    },
    (16, 2048, "baseline"): {
        "mfu": [45.66, 40.09, 32.44, 24.21],
        "mem": [24.03, 25.98, 29.92, 38.71],
    },
    (16, 2048, "redis"): {
        "mfu": [45.56, 42.82, 38.65, 36.98],
        "mem": [24.03, 25.98, 29.92, 38.71],
    },
    (16, 2048, "vocab-1"): {
        "mfu": [49.02, 50.62, 50.54, 50.66],
        "mem": [24.37, 24.63, 25.14, 26.26],
    },
    (16, 2048, "vocab-2"): {
        "mfu": [48.90, 50.49, 50.46, 50.46],
        "mem": [23.57, 23.83, 24.35, 25.47],
    },
    (16, 2048, "interlaced"): {
        "mfu": [48.94, 48.97, 49.19, 49.52],
        "mem": [29.23, 29.47, 29.97, 31.10],
    },
    (16, 4096, "baseline"): {
        "mfu": [47.56, 41.21, 33.88, 25.33],
        "mem": [36.99, 38.94, 42.85, 50.90],
    },
    (16, 4096, "redis"): {
        "mfu": [47.41, 43.07, 43.15, 40.15],
        "mem": [36.99, 38.94, 42.85, 50.90],
    },
    (16, 4096, "vocab-1"): {
        "mfu": [50.93, 50.97, 50.71, 51.22],
        "mem": [39.46, 39.73, 40.31, 41.53],
    },
    (16, 4096, "vocab-2"): {
        "mfu": [50.97, 50.80, 50.68, 50.90],
        "mem": [37.89, 38.18, 38.77, 39.92],
    },
    (16, 4096, "interlaced"): {
        "mfu": [49.52, 49.53, 49.77, 49.84],
        "mem": [49.16, 49.44, 50.05, 51.28],
    },
    (32, 2048, "baseline"): {
        "mfu": [42.81, 37.28, 28.97, 20.86],
        "mem": [33.45, 35.89, 41.17, 52.16],
    },
    (32, 2048, "redis"): {
        "mfu": [43.48, 37.29, 36.32, 29.16],
        "mem": [33.45, 35.89, 41.17, 52.16],
    },
    (32, 2048, "vocab-1"): {
        "mfu": [45.85, 45.92, 45.90, 46.11],
        "mem": [33.38, 33.55, 33.86, 34.51],
    },
    (32, 2048, "vocab-2"): {
        "mfu": [45.54, 45.86, 45.86, 46.16],
        "mem": [32.72, 32.88, 33.20, 33.84],
    },
    (32, 2048, "interlaced"): {
        "mfu": [42.40, 42.43, 42.75, 43.25],
        "mem": [42.94, 43.09, 43.40, 44.07],
    },
    (32, 4096, "baseline"): {
        "mfu": [43.68, 38.11, 30.05, 21.63],
        "mem": [54.97, 57.41, 62.29, 73.05],
    },
    (32, 4096, "redis"): {
        "mfu": [44.01, 38.12, 37.87, 31.03],
        "mem": [54.97, 57.41, 62.29, 73.05],
    },
    (32, 4096, "vocab-1"): {
        "mfu": [46.41, 46.44, 46.68, 46.83],
        "mem": [57.41, 57.56, 57.88, 58.58],
    },
    (32, 4096, "vocab-2"): {
        "mfu": [46.23, 46.35, 46.55, 46.84],
        "mem": [56.09, 56.26, 56.61, 57.31],
    },
    (32, 4096, "interlaced"): {
        "mfu": [None, None, None, None],
        "mem": [None, None, None, None],
    },
}

#: Table 6 — V-Half.  Same shape as TABLE5; methods "vhalf-baseline"
#: and "vhalf-vocab-1".
TABLE6: dict[tuple[int, int, str], dict[str, list[float | None]]] = {
    (16, 2048, "vhalf-baseline"): {
        "mfu": [46.41, 38.52, 28.75, 19.99],
        "mem": [15.57, 19.77, 28.55, 46.77],
    },
    (16, 2048, "vhalf-vocab-1"): {
        "mfu": [52.82, 53.11, 53.41, 52.89],
        "mem": [13.20, 13.46, 13.98, 15.02],
    },
    (16, 4096, "vhalf-baseline"): {
        "mfu": [50.01, 41.17, 31.36, 21.90],
        "mem": [21.22, 25.61, 34.56, 53.11],
    },
    (16, 4096, "vhalf-vocab-1"): {
        "mfu": [58.69, 58.56, 58.44, 57.59],
        "mem": [20.14, 20.41, 20.96, 22.06],
    },
    (24, 2048, "vhalf-baseline"): {
        "mfu": [51.07, 43.13, 32.38, 22.54],
        "mem": [23.94, 29.12, 39.98, 61.71],
    },
    (24, 2048, "vhalf-vocab-1"): {
        "mfu": [56.70, 56.50, 55.72, 54.86],
        "mem": [21.08, 21.29, 21.72, 22.57],
    },
    (24, 4096, "vhalf-baseline"): {
        "mfu": [54.53, 45.96, 34.99, 24.31],
        "mem": [33.60, 38.97, 49.90, 72.60],
    },
    (24, 4096, "vhalf-vocab-1"): {
        "mfu": [60.09, 60.09, 59.42, 58.22],
        "mem": [32.55, 32.78, 33.22, 34.12],
    },
    (32, 2048, "vhalf-baseline"): {
        "mfu": [52.80, 45.56, 35.69, None],
        "mem": [34.11, 40.28, 53.22, None],
    },
    (32, 2048, "vhalf-vocab-1"): {
        "mfu": [57.70, 57.62, 57.69, 57.80],
        "mem": [30.85, 31.04, 31.42, 32.18],
    },
    (32, 4096, "vhalf-baseline"): {
        "mfu": [56.06, 48.17, 37.85, None],
        "mem": [48.84, 55.19, 68.12, None],
    },
    (32, 4096, "vhalf-vocab-1"): {
        "mfu": [60.10, 60.14, 60.72, 59.82],
        "mem": [47.99, 48.19, 48.59, 49.38],
    },
}

#: Table 3 — scaling factor (%) of partitioned vocabulary layers
#: relative to linear scaling at 256k vocabulary.
#: Key: (seq, layer) → per-GPU-count list for 8/16/32 GPUs.
TABLE3: dict[tuple[int, str], list[float]] = {
    (2048, "output-vocab-1"): [91.29, 84.22, 80.59],
    (2048, "output-vocab-2"): [86.72, 79.84, 75.93],
    (2048, "input"): [39.99, 28.85, 15.18],
    (4096, "output-vocab-1"): [93.21, 88.02, 85.24],
    (4096, "output-vocab-2"): [88.36, 83.42, 79.66],
    (4096, "input"): [27.69, 15.52, 8.35],
}

#: Appendix B.2 — removing the interlaced pipeline's synchronous
#: all-reduces improved end-to-end iteration time by 10.95 % (32 GPUs,
#: 21.5B model).
INTERLACED_SYNC_ABLATION_SPEEDUP = 10.95
