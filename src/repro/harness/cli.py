"""``repro-experiments`` — regenerate the paper's tables and figures.

Examples::

    repro-experiments fig2
    repro-experiments fig3
    repro-experiments table3
    repro-experiments table5 --gpus 8 --seq 2048
    repro-experiments table6 --gpus 16 --seq 4096 --microbatches 64
    repro-experiments appendix-b
    repro-experiments schedules --devices 4
    repro-experiments all
"""

from __future__ import annotations

import argparse
import sys


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--microbatches",
        type=int,
        default=128,
        help="microbatches per iteration (paper: 128)",
    )


def _cmd_fig2(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_figure2

    print(run_figure2().render())


def _cmd_fig3(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_figure3

    print(run_figure3().render())


def _cmd_table3(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table3

    print(run_table3().render())


def _cmd_table5(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table5_cell

    for gpus in args.gpus:
        for seq in args.seq:
            print(
                run_table5_cell(
                    gpus, seq, num_microbatches=args.microbatches
                ).render()
            )
            print()


def _cmd_table6(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table6_cell

    for gpus in args.gpus:
        for seq in args.seq:
            print(
                run_table6_cell(
                    gpus, seq, num_microbatches=args.microbatches
                ).render()
            )
            print()


def _cmd_appendix_b(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_interlaced_ablation

    print(run_interlaced_ablation(num_microbatches=args.microbatches).render())


def _cmd_schedules(args: argparse.Namespace) -> None:
    from repro.config import ModelConfig, ParallelConfig
    from repro.harness.experiments import build_schedule
    from repro.sim import RuntimeModel, SimulationSetup, execute_schedule, render_timeline

    p = args.devices
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=2048,
        num_attention_heads=16,
        seq_length=2048,
        vocab_size=128 * 1024,
    )
    parallel = ParallelConfig(pipeline_size=p, num_microbatches=args.microbatches)
    setup = SimulationSetup(model, parallel)
    for method in ("baseline", "vocab-1", "vocab-2"):
        schedule = build_schedule(method, setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        print(render_timeline(result, width=args.width, mode=args.mode))
        print()


def _cmd_all(args: argparse.Namespace) -> None:
    from repro.harness.runner import (
        run_figure2,
        run_figure3,
        run_interlaced_ablation,
        run_table3,
        run_table5_cell,
        run_table6_cell,
    )

    print(run_figure2().render(), "\n")
    print(run_figure3().render(), "\n")
    print(run_table3().render(), "\n")
    for gpus in (8, 16, 32):
        for seq in (2048, 4096):
            print(run_table5_cell(gpus, seq, num_microbatches=args.microbatches).render())
            print()
    for gpus in (16, 24, 32):
        for seq in (2048, 4096):
            print(run_table6_cell(gpus, seq, num_microbatches=args.microbatches).render())
            print()
    print(run_interlaced_ablation(num_microbatches=args.microbatches).render())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Balancing Pipeline "
        "Parallelism with Vocabulary Parallelism' (MLSys 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="Figure 2: vocabulary/transformer cost ratios")
    sub.add_parser("fig3", help="Figure 3: layer redistribution per-device view")
    sub.add_parser("table3", help="Table 3: partitioned vocabulary scaling factors")

    t5 = sub.add_parser("table5", help="Table 5 / Figures 11-12: methods on 1F1B")
    t5.add_argument("--gpus", type=int, nargs="+", default=[8], choices=[8, 16, 32])
    t5.add_argument("--seq", type=int, nargs="+", default=[2048], choices=[2048, 4096])
    _add_common(t5)

    t6 = sub.add_parser("table6", help="Table 6 / Figures 13-14: V-Half")
    t6.add_argument("--gpus", type=int, nargs="+", default=[16], choices=[16, 24, 32])
    t6.add_argument("--seq", type=int, nargs="+", default=[2048], choices=[2048, 4096])
    _add_common(t6)

    ab = sub.add_parser("appendix-b", help="Appendix B: interlaced ablation")
    _add_common(ab)

    sc = sub.add_parser("schedules", help="ASCII schedule timelines (Figures 1/10)")
    sc.add_argument("--devices", type=int, default=4)
    sc.add_argument("--width", type=int, default=120)
    sc.add_argument("--mode", choices=["type", "microbatch"], default="type")
    _add_common(sc)

    al = sub.add_parser("all", help="everything (several minutes)")
    _add_common(al)

    args = parser.parse_args(argv)
    handlers = {
        "fig2": _cmd_fig2,
        "fig3": _cmd_fig3,
        "table3": _cmd_table3,
        "table5": _cmd_table5,
        "table6": _cmd_table6,
        "appendix-b": _cmd_appendix_b,
        "schedules": _cmd_schedules,
        "all": _cmd_all,
    }
    handlers[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
