"""``repro-experiments`` — regenerate the paper's results and plan schedules.

Subcommands:

* ``fig2`` — Figure 2: vocabulary/transformer cost ratios (Gemma2-9B);
* ``fig3`` — Figure 3: layer redistribution per-device view;
* ``table3`` — Table 3: partitioned vocabulary scaling factors;
* ``table5`` — Table 5 / Figures 11–12: methods on 1F1B;
* ``table6`` — Table 6 / Figures 13–14: the V-Half family;
* ``appendix-b`` — Appendix B: interlaced pipeline ablation;
* ``schedules`` — ASCII schedule timelines (Figures 1/10);
* ``plan`` — rank all schedule families for a configuration
  (:mod:`repro.planner`); accepts multiple ``--devices``/``--vocab``
  values and sweeps the grid in parallel;
* ``optimize`` — rewrite-based schedule search
  (:mod:`repro.optimize`): start from the best named family and search
  semantics-preserving local rewrites (pass swaps, collective hoists,
  activation handoffs, token splits) for a schedule the simulator
  verifies as faster;
* ``scenarios`` — cluster scenarios (:mod:`repro.scenarios`): list and
  describe the registry, and price schedule robustness on non-ideal
  clusters with seeded Monte Carlo jitter;
* ``calibrate`` — calibrated cost models
  (:mod:`repro.costmodel.calibrate`): fit per-SKU hardware profiles
  against simulator ground truth, re-measure predicted-vs-simulated
  accuracy (``report``, with ``--check`` as a CI drift gate), and
  inspect committed profiles (``show``);
* ``whatif`` — price one single-device slowdown incrementally
  (:func:`repro.planner.whatif`): cone-limited delta replay over a
  resident compiled graph instead of a full re-plan;
* ``serve`` — the long-running planning service (:mod:`repro.service`):
  plan/sweep/scenario queries over HTTP with request coalescing and
  tiered caches (see ``docs/service.md``);
* ``all`` — every table and figure (several minutes).

Examples::

    repro-experiments fig2
    repro-experiments fig3
    repro-experiments table3
    repro-experiments table5 --gpus 8 --seq 2048
    repro-experiments table6 --gpus 16 --seq 4096 --microbatches 64
    repro-experiments appendix-b
    repro-experiments schedules --devices 4
    repro-experiments plan --devices 8 --vocab 128k
    repro-experiments plan --devices 8 16 --vocab 64k 256k --memory-budget 40
    repro-experiments plan --devices 8 --scenario slow-node
    repro-experiments optimize --scenario slow-node --seed 0
    repro-experiments optimize --devices 8 --strategy anneal --budget 128
    repro-experiments scenarios list
    repro-experiments scenarios describe --scenario slow-node
    repro-experiments scenarios run --scenario high-jitter --method vocab-1
    repro-experiments scenarios compare --scenario slow-node
    repro-experiments plan --devices 8 --cost-model a100-sim --top-k all
    repro-experiments calibrate fit --name a100-sim
    repro-experiments calibrate report --quick --check
    repro-experiments calibrate show --profile a100-sim
    repro-experiments whatif --devices 8 --method vocab-1 --device -1 --factor 1.3
    repro-experiments serve --port 8181 --cache-dir /tmp/plans
    repro-experiments all
"""

from __future__ import annotations

import argparse
import sys

#: One line per subcommand, rendered into ``--help``'s epilog.
SUBCOMMANDS = {
    "fig2": "Figure 2: vocabulary/transformer cost ratios",
    "fig3": "Figure 3: layer redistribution per-device view",
    "table3": "Table 3: partitioned vocabulary scaling factors",
    "table5": "Table 5 / Figures 11-12: methods on 1F1B",
    "table6": "Table 6 / Figures 13-14: V-Half",
    "appendix-b": "Appendix B: interlaced ablation",
    "schedules": "ASCII schedule timelines (Figures 1/10)",
    "plan": "rank schedule families for a config (planner)",
    "optimize": "rewrite-based search for a schedule beating the families",
    "scenarios": "cluster scenarios: robustness on non-ideal clusters",
    "calibrate": "fit/inspect calibrated cost-model profiles",
    "whatif": "incremental single-device what-if (delta replay)",
    "serve": "HTTP planning service: coalescing + tiered caches",
    "all": "everything (several minutes)",
}


def _parse_vocab(text: str) -> int:
    """Parse a vocabulary size: ``131072``, ``128k`` or ``128K``."""
    text = text.strip().lower()
    try:
        if text.endswith("k"):
            return int(text[:-1]) * 1024
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid vocabulary size {text!r}; use e.g. 128k or 131072"
        ) from None


def _parse_top_k(text: str) -> int | None:
    """Parse ``--top-k``: an integer, or ``all`` to simulate everything."""
    if text.strip().lower() == "all":
        return None
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --top-k {text!r}; use an integer or 'all'"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("--top-k must be >= 0 or 'all'")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--microbatches",
        type=int,
        default=128,
        help="microbatches per iteration (paper: 128)",
    )


def _add_format(parser: argparse.ArgumentParser) -> None:
    """The uniform ``--format {table,json}`` pair (+ legacy ``--json``)."""
    parser.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format (default table)",
    )
    parser.add_argument(
        "--json", action="store_const", dest="format", const="json",
        help="deprecated alias for --format json",
    )


def _add_scenario(parser: argparse.ArgumentParser, help_: str) -> None:
    parser.add_argument("--scenario", default=None, metavar="NAME", help=help_)


def _add_cost_model(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cost-model", default=None, metavar="NAME",
        help="price estimates with a calibrated cost-model profile "
        "(see 'repro-experiments calibrate'); a calibrated profile "
        "also trust-gates the top-k simulation (default: analytic)",
    )


def _add_seed(parser: argparse.ArgumentParser, help_: str) -> None:
    parser.add_argument("--seed", type=int, default=0, help=help_)


def _cmd_fig2(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_figure2

    print(run_figure2().render())


def _cmd_fig3(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_figure3

    print(run_figure3().render())


def _cmd_table3(_args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table3

    print(run_table3().render())


def _cmd_table5(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table5_cell

    for gpus in args.gpus:
        for seq in args.seq:
            print(
                run_table5_cell(
                    gpus, seq, num_microbatches=args.microbatches
                ).render()
            )
            print()


def _cmd_table6(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_table6_cell

    for gpus in args.gpus:
        for seq in args.seq:
            print(
                run_table6_cell(
                    gpus, seq, num_microbatches=args.microbatches
                ).render()
            )
            print()


def _cmd_appendix_b(args: argparse.Namespace) -> None:
    from repro.harness.runner import run_interlaced_ablation

    print(run_interlaced_ablation(num_microbatches=args.microbatches).render())


def _cmd_schedules(args: argparse.Namespace) -> None:
    from repro.config import ModelConfig, ParallelConfig
    from repro.harness.experiments import build_schedule
    from repro.sim import RuntimeModel, SimulationSetup, execute_schedule, render_timeline

    p = args.devices
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=2048,
        num_attention_heads=16,
        seq_length=2048,
        vocab_size=128 * 1024,
    )
    parallel = ParallelConfig(pipeline_size=p, num_microbatches=args.microbatches)
    setup = SimulationSetup(model, parallel)
    for method in ("baseline", "vocab-1", "vocab-2"):
        schedule = build_schedule(method, setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        print(render_timeline(result, width=args.width, mode=args.mode))
        print()


def _cmd_plan(args: argparse.Namespace) -> None:
    import json

    from repro.planner.planner import PlannerConstraints
    from repro.planner.sweep import best_method_table, grid, plan_point, sweep
    from repro.service.requests import plans_to_json, sweep_to_json

    try:
        if args.cost_model is not None:
            # Resolve up front: a typo fails here with the name list
            # instead of inside a sweep worker.
            from repro.costmodel.calibrate import get_cost_model

            get_cost_model(args.cost_model)
        constraints = PlannerConstraints(
            memory_budget_gib=args.memory_budget,
            methods=tuple(args.methods) if args.methods else None,
            simulate_top_k=args.top_k,
            cost_model=args.cost_model,
        )
        points = grid(
            devices=args.devices,
            vocab_sizes=args.vocab,
            seq_lengths=[args.seq],
            microbatches=[args.microbatches],
            memory_budgets_gib=[args.memory_budget],
            pass_overheads=args.pass_overhead,
            scenarios=[args.scenario],
        )
        if len(points) == 1:
            plans = plan_point(
                points[0], constraints, cache_dir=args.cache_dir
            ).plans
            if args.format == "json":
                print(json.dumps(plans_to_json(plans), indent=2))
            else:
                print(plans.render())
            return
        outcomes = sweep(
            points,
            constraints,
            executor=args.executor,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            chunk_size=args.chunk_size,
        )
    except (ValueError, KeyError) as error:
        # Config validation (vocab/seq/devices bounds, unknown methods
        # or scenarios, bad budgets) surfaces as an argparse-style
        # message, not a traceback.  KeyError.__str__ would re-quote
        # the message; unwrap its payload instead.
        message = (
            error.args[0]
            if isinstance(error, KeyError) and error.args
            else error
        )
        raise SystemExit(f"repro-experiments plan: error: {message}") from None
    if args.format == "json":
        print(json.dumps(sweep_to_json(outcomes), indent=2))
        return
    for outcome in outcomes:
        print(outcome.plans.render())
        print()
    print(best_method_table(outcomes))


def _cmd_optimize(args: argparse.Namespace) -> None:
    import json

    from repro.config import ParallelConfig
    from repro.optimize import optimize
    from repro.planner.cache import PlanCache
    from repro.planner.planner import PlannerConstraints
    from repro.planner.sweep import model_for_devices

    try:
        if args.cost_model is not None:
            from repro.costmodel.calibrate import get_cost_model

            get_cost_model(args.cost_model)
        model = model_for_devices(args.devices, args.seq, args.vocab)
        parallel = ParallelConfig(
            pipeline_size=args.devices,
            num_microbatches=args.microbatches,
            microbatch_size=1,
        )
        constraints = PlannerConstraints(
            memory_budget_gib=args.memory_budget,
            methods=tuple(args.methods) if args.methods else None,
            cost_model=args.cost_model,
        )
        cache = (
            PlanCache(args.cache_dir) if args.cache_dir is not None else None
        )
        result = optimize(
            model,
            parallel,
            constraints,
            cache=cache,
            pass_overhead=args.pass_overhead,
            scenario=args.scenario,
            strategy=args.strategy,
            seed=args.seed,
            budget=args.budget,
        )
    except (ValueError, KeyError) as error:
        message = (
            error.args[0]
            if isinstance(error, KeyError) and error.args
            else error
        )
        raise SystemExit(
            f"repro-experiments optimize: error: {message}"
        ) from None
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
        return
    print(result.render())


def _scenario_model(args: argparse.Namespace):
    """Model/parallel configuration of one ``scenarios`` invocation."""
    from repro.config import ParallelConfig
    from repro.planner.sweep import model_for_devices

    model = model_for_devices(args.devices, args.seq, args.vocab)
    parallel = ParallelConfig(
        pipeline_size=args.devices,
        num_microbatches=args.microbatches,
        microbatch_size=1,
    )
    return model, parallel


def _scenario_rows(stats) -> list[object]:
    """Shared stats columns of the ``run``/``compare`` tables.

    Times are pre-formatted to 4 decimals (format_table's default 2
    would hide single-digit-percent jitter spreads).
    """
    return [
        f"{stats.nominal_time:.4f}",
        f"{stats.p50_time:.4f}",
        f"{stats.p95_time:.4f}",
        f"{stats.worst_time:.4f}",
        round(100.0 * stats.p95_inflation, 2),
        round(100.0 * stats.p95_bubble, 2),
    ]


def _cmd_scenarios(args: argparse.Namespace) -> None:
    import json

    from repro.harness.tables import format_table
    from repro.scenarios import get_scenario, list_scenarios, method_robustness

    def require_scenario():
        if args.scenario is None:
            raise SystemExit(
                f"repro-experiments scenarios {args.action}: error: "
                "--scenario is required"
            )
        try:
            return get_scenario(args.scenario)
        except KeyError as error:
            raise SystemExit(
                f"repro-experiments scenarios: error: {error.args[0]}"
            ) from None

    if args.action == "list":
        scenarios = list_scenarios()
        if args.format == "json":
            print(
                json.dumps(
                    [
                        {"name": s.name, "description": s.description}
                        for s in scenarios
                    ],
                    indent=2,
                )
            )
            return
        rows = [
            [
                s.name,
                "yes" if s.has_heterogeneity else "-",
                "yes" if s.has_interconnect_scaling else "-",
                f"{s.pass_jitter:.0%}/{s.comm_jitter:.0%}" if s.has_jitter else "-",
                s.description,
            ]
            for s in scenarios
        ]
        print(
            format_table(
                ["name", "hetero", "interconnect", "jitter", "description"],
                rows,
                title="Registered cluster scenarios",
            )
        )
        return

    if args.action == "describe":
        scenario = require_scenario()
        _, parallel = _scenario_model(args)
        print(scenario.describe(parallel))
        return

    scenario = require_scenario()
    model, parallel = _scenario_model(args)
    from repro.harness.experiments import KNOWN_METHODS
    from repro.planner.estimate import infeasibility_reason

    if args.action == "run":
        methods = [args.method]
        if args.method not in KNOWN_METHODS:
            raise SystemExit(
                f"repro-experiments scenarios run: error: unknown method "
                f"{args.method!r}; expected one of {KNOWN_METHODS}"
            )
    else:  # compare
        methods = list(KNOWN_METHODS)

    results = []
    skipped = []
    for method in methods:
        reason = infeasibility_reason(method, model, parallel)
        if reason is not None:
            skipped.append((method, reason))
            continue
        stats = method_robustness(
            method,
            model,
            parallel,
            scenario,
            samples=args.samples,
            seed=args.seed,
        )
        results.append((method, stats))
    # Robust ranking: the objective quantile, method name as tie-break.
    results.sort(key=lambda item: (item[1].p95_time, item[0]))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "scenario": scenario.name,
                    "devices": args.devices,
                    "vocab_size": args.vocab,
                    "seq_length": args.seq,
                    "microbatches": args.microbatches,
                    "samples": args.samples,
                    "seed": args.seed,
                    "ranked": [
                        {"method": method, **stats.as_dict()}
                        for method, stats in results
                    ],
                    "skipped": [
                        {"method": method, "reason": reason}
                        for method, reason in skipped
                    ],
                },
                indent=2,
            )
        )
        return
    rows = [
        [rank, method] + _scenario_rows(stats)
        for rank, (method, stats) in enumerate(results, start=1)
    ]
    title = (
        f"Scenario {scenario.name} — {args.devices} devices, "
        f"vocab {args.vocab // 1024}k, seq {args.seq}, "
        f"m={args.microbatches}, K={args.samples}, seed {args.seed} "
        "(ranked by p95)"
    )
    print(
        format_table(
            [
                "rank", "method", "nominal(s)", "p50(s)", "p95(s)",
                "worst(s)", "infl%", "bubble95%",
            ],
            rows,
            title=title,
        )
    )
    for method, reason in skipped:
        print(f"  skipped {method:15s} {reason}")


def _cmd_calibrate(args: argparse.Namespace) -> int | None:
    import json
    from pathlib import Path

    from repro.costmodel.calibrate import (
        HardwareProfile,
        builtin_profiles_dir,
        check_profile,
        evaluate_profile,
        fit_profile,
        get_cost_model,
    )

    def load_profile() -> HardwareProfile:
        """``--profile``: a JSON path, or a resolvable model name."""
        spec = args.profile
        if Path(spec).suffix == ".json" or "/" in spec:
            try:
                return HardwareProfile.load(spec)
            except ValueError as error:
                raise SystemExit(
                    f"repro-experiments calibrate: error: {error}"
                ) from None
        try:
            model = get_cost_model(spec)
        except KeyError as error:
            raise SystemExit(
                f"repro-experiments calibrate: error: {error.args[0]}"
            ) from None
        try:
            return model.profile
        except NotImplementedError:
            raise SystemExit(
                f"repro-experiments calibrate: error: cost model {spec!r} "
                "carries no hardware profile to inspect"
            ) from None

    if args.action == "fit":
        try:
            profile = fit_profile(
                args.name,
                quick=args.quick,
                seed=0 if args.seed is None else args.seed,
                engine=args.engine,
            )
        except ValueError as error:
            raise SystemExit(
                f"repro-experiments calibrate fit: error: {error}"
            ) from None
        out = Path(
            args.out
            if args.out is not None
            else builtin_profiles_dir() / f"{args.name}.json"
        )
        profile.save(out)
        if args.format == "json":
            print(profile.to_json(), end="")
        else:
            print(profile.report.render())
            print(f"saved profile {profile.name!r} (digest {profile.digest()[:12]}) to {out}")
        return None

    profile = load_profile()
    if args.action == "show":
        if args.format == "json":
            print(profile.to_json(), end="")
            return None
        print(
            f"profile {profile.name!r} — SKU {profile.sku}, "
            f"seed {profile.seed}, digest {profile.digest()[:12]}, "
            f"{'calibrated' if profile.calibrated else 'NOT calibrated (stale or unfitted)'}"
        )
        for fit in profile.fits:
            params = ", ".join(
                f"{feat}={value:+.4g}"
                for feat, value in zip(profile.feature_names, fit.params)
            )
            print(f"  {fit.method:15s} {params}")
        if profile.report is not None:
            print()
            print(profile.report.render())
        return None

    # report: re-measure against the current simulator (the drift gate).
    fresh = evaluate_profile(profile, quick=args.quick, seed=args.seed)
    if args.format == "json":
        print(json.dumps(fresh.as_dict(), indent=2))
    else:
        print(fresh.render())
    if not args.check:
        return None
    problems = check_profile(profile, fresh, tolerance=args.tolerance)
    if problems:
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1
    print(
        f"check ok: re-measured accuracy within {args.tolerance:g}x of the "
        f"stored bounds for profile {profile.name!r}"
    )
    return None


def _cmd_whatif(args: argparse.Namespace) -> None:
    import json

    from repro.harness.tables import format_table
    from repro.planner.cache import PlanCache
    from repro.planner.whatif import whatif

    try:
        model, parallel = _scenario_model(args)
        cache = (
            PlanCache(args.cache_dir) if args.cache_dir is not None else None
        )
        result = whatif(
            model,
            parallel,
            method=args.method,
            device=args.device,
            factor=args.factor,
            pass_overhead=args.pass_overhead,
            scenario=args.scenario,
            cache=cache,
        )
    except (ValueError, KeyError) as error:
        message = (
            error.args[0]
            if isinstance(error, KeyError) and error.args
            else error
        )
        raise SystemExit(
            f"repro-experiments whatif: error: {message}"
        ) from None
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
        return
    title = (
        f"What-if — {result.method}: device {result.device} at "
        f"{result.factor:g}x duration, {args.devices} devices, "
        f"vocab {args.vocab // 1024}k, seq {args.seq}, "
        f"m={args.microbatches}"
    )
    print(
        format_table(
            [
                "baseline(s)", "whatif(s)", "slowdown", "bubble%",
                "whatif bubble%", "support",
            ],
            [
                [
                    f"{result.baseline_time:.4f}",
                    f"{result.whatif_time:.4f}",
                    f"{result.slowdown:.4f}",
                    round(100.0 * result.baseline_bubble, 2),
                    round(100.0 * result.whatif_bubble, 2),
                    result.support,
                ]
            ],
            title=title,
        )
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import PlanningService

    if args.fleet:
        return _cmd_serve_fleet(args)
    try:
        service = PlanningService(
            host=args.host,
            port=args.port,
            executor=args.executor,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            lru_size=args.lru_size,
            max_cache_entries=args.max_cache_entries,
            max_inflight=args.max_inflight,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            default_deadline_ms=args.default_deadline_ms,
            breaker_backoff_s=args.breaker_backoff,
            faults=args.faults,
        )
    except ValueError as error:
        raise SystemExit(
            f"repro-experiments serve: error: {error}"
        ) from None

    def announce(live: PlanningService) -> None:
        # The exact line tools/loadtest_service.py --spawn parses for
        # the bound port (--port 0 binds an ephemeral one).
        print(f"serving on http://{live.host}:{live.port}", flush=True)

    return service.run(ready=announce)


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    from repro import faultinject
    from repro.service.fleet import FleetSupervisor
    from repro.service.router import FleetRouter

    shard_args = [
        "--executor", args.executor,
        "--lru-size", str(args.lru_size),
        "--max-cache-entries", str(args.max_cache_entries),
        "--max-inflight", str(args.max_inflight),
        "--breaker-backoff", str(args.breaker_backoff),
    ]
    if args.workers is not None:
        shard_args += ["--workers", str(args.workers)]
    if args.cache_dir is not None:
        # One crash-safe disk tier shared by every shard: a plan one
        # shard computed is a disk hit on all of them after a restart.
        shard_args += ["--cache-dir", args.cache_dir]
    if args.tenant_rate is not None:
        shard_args += ["--tenant-rate", str(args.tenant_rate)]
    if args.tenant_burst is not None:
        shard_args += ["--tenant-burst", str(args.tenant_burst)]
    if args.default_deadline_ms is not None:
        shard_args += ["--default-deadline-ms", str(args.default_deadline_ms)]
    if args.faults:
        # Shards get the spec explicitly; the supervisor/router arm it
        # too (kill-shard / hang-shard / slow-shard fire up here).
        shard_args += ["--faults", args.faults]
    try:
        if args.faults:
            faultinject.install(args.faults)
        else:
            faultinject.get_injector()
        supervisor = FleetSupervisor(
            args.fleet,
            host=args.host,
            port=args.port,
            shard_args=shard_args,
            probe_interval_s=args.probe_interval,
            restart_backoff_s=args.restart_backoff,
            hedge_min_ms=args.hedge_min_ms,
            hedge_max_ms=args.hedge_max_ms,
        )
    except ValueError as error:
        raise SystemExit(
            f"repro-experiments serve: error: {error}"
        ) from None

    def announce(router: FleetRouter) -> None:
        # Same line the single-process path prints, so loadtest --spawn
        # parses the bound port identically for both topologies.
        print(f"serving on http://{router.host}:{router.port}", flush=True)

    return supervisor.run(ready=announce)


def _cmd_all(args: argparse.Namespace) -> None:
    from repro.harness.runner import (
        run_figure2,
        run_figure3,
        run_interlaced_ablation,
        run_table3,
        run_table5_cell,
        run_table6_cell,
    )

    print(run_figure2().render(), "\n")
    print(run_figure3().render(), "\n")
    print(run_table3().render(), "\n")
    for gpus in (8, 16, 32):
        for seq in (2048, 4096):
            print(run_table5_cell(gpus, seq, num_microbatches=args.microbatches).render())
            print()
    for gpus in (16, 24, 32):
        for seq in (2048, 4096):
            print(run_table6_cell(gpus, seq, num_microbatches=args.microbatches).render())
            print()
    print(run_interlaced_ablation(num_microbatches=args.microbatches).render())


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro-experiments`` argument parser.

    Public so tooling (``tools/check_docs_links.py``) can introspect
    every subcommand and option instead of pattern-matching source.
    """
    epilog = "subcommands:\n" + "\n".join(
        f"  {name:12s} {help_}" for name, help_ in SUBCOMMANDS.items()
    )
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of 'Balancing Pipeline "
        "Parallelism with Vocabulary Parallelism' (MLSys 2025), or plan "
        "the best schedule for a new configuration.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help=SUBCOMMANDS["fig2"])
    sub.add_parser("fig3", help=SUBCOMMANDS["fig3"])
    sub.add_parser("table3", help=SUBCOMMANDS["table3"])

    t5 = sub.add_parser("table5", help=SUBCOMMANDS["table5"])
    t5.add_argument("--gpus", type=int, nargs="+", default=[8], choices=[8, 16, 32])
    t5.add_argument("--seq", type=int, nargs="+", default=[2048], choices=[2048, 4096])
    _add_common(t5)

    t6 = sub.add_parser("table6", help=SUBCOMMANDS["table6"])
    t6.add_argument("--gpus", type=int, nargs="+", default=[16], choices=[16, 24, 32])
    t6.add_argument("--seq", type=int, nargs="+", default=[2048], choices=[2048, 4096])
    _add_common(t6)

    ab = sub.add_parser("appendix-b", help=SUBCOMMANDS["appendix-b"])
    _add_common(ab)

    sc = sub.add_parser("schedules", help=SUBCOMMANDS["schedules"])
    sc.add_argument("--devices", type=int, default=4)
    sc.add_argument("--width", type=int, default=120)
    sc.add_argument("--mode", choices=["type", "microbatch"], default="type")
    _add_common(sc)

    pl = sub.add_parser("plan", help=SUBCOMMANDS["plan"])
    pl.add_argument(
        "--devices", type=int, nargs="+", default=[8],
        help="pipeline device counts to plan for (several values sweep a grid)",
    )
    pl.add_argument(
        "--vocab", type=_parse_vocab, nargs="+", default=[128 * 1024],
        metavar="SIZE", help="vocabulary sizes, e.g. 128k or 131072",
    )
    pl.add_argument("--seq", type=int, default=2048, help="sequence length")
    pl.add_argument(
        "--memory-budget", type=float, default=None, metavar="GIB",
        help="per-device peak-memory budget in GiB (default: the A100's 80)",
    )
    pl.add_argument(
        "--methods", nargs="+", default=None, metavar="METHOD",
        help="restrict the search to these schedule families",
    )
    pl.add_argument(
        "--pass-overhead", type=float, nargs="+", default=[None], metavar="S",
        help="per-pass host overhead bindings in seconds (several values "
        "sweep the §7 overhead ablation over shared schedule structures)",
    )
    pl.add_argument(
        "--top-k", type=_parse_top_k, default=3, metavar="K",
        help="simulate the K best-estimated candidates (0: estimates only, "
        "'all': simulate everything; default 3)",
    )
    pl.add_argument(
        "--executor", choices=["process", "thread", "serial"], default="process",
        help="pool type for grid sweeps",
    )
    pl.add_argument(
        "--workers", type=int, default=None, help="max sweep workers"
    )
    pl.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="grid points per pool task (default: ~4 chunks per worker)",
    )
    pl.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="disk-backed plan cache shared across invocations and workers",
    )
    _add_scenario(
        pl,
        "price the plan under a registered cluster scenario "
        "(see 'repro-experiments scenarios list')",
    )
    _add_cost_model(pl)
    _add_format(pl)
    _add_common(pl)

    op = sub.add_parser("optimize", help=SUBCOMMANDS["optimize"])
    op.add_argument(
        "--devices", type=int, default=8, help="pipeline device count"
    )
    op.add_argument(
        "--vocab", type=_parse_vocab, default=128 * 1024, metavar="SIZE",
        help="vocabulary size, e.g. 128k or 131072",
    )
    op.add_argument("--seq", type=int, default=2048, help="sequence length")
    op.add_argument(
        "--microbatches", type=int, default=16,
        help="microbatches per iteration (default 16 — small enough to "
        "keep the search interactive, with token-split headroom)",
    )
    op.add_argument(
        "--memory-budget", type=float, default=None, metavar="GIB",
        help="per-device peak-memory budget in GiB (default: the A100's 80)",
    )
    op.add_argument(
        "--methods", nargs="+", default=None, metavar="METHOD",
        help="restrict the starting named families",
    )
    op.add_argument(
        "--strategy", choices=["greedy", "anneal"], default="greedy",
        help="search strategy (default greedy; anneal accepts uphill "
        "moves on a cooling temperature)",
    )
    op.add_argument(
        "--budget", type=int, default=96, metavar="N",
        help="oracle evaluations the search may spend (default 96)",
    )
    op.add_argument(
        "--pass-overhead", type=float, default=None, metavar="S",
        help="per-pass host overhead binding in seconds",
    )
    op.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="disk-backed plan cache shared with plan/serve runs",
    )
    _add_seed(op, "seed for the search's random decisions (default 0)")
    _add_scenario(
        op, "optimize under a registered cluster scenario's runtime"
    )
    _add_cost_model(op)
    _add_format(op)

    sn = sub.add_parser("scenarios", help=SUBCOMMANDS["scenarios"])
    sn.add_argument(
        "action", choices=["list", "describe", "run", "compare"],
        help="list/describe the registry, or price one method ('run') / "
        "all schedule families ('compare') under a scenario",
    )
    _add_scenario(
        sn, "registered scenario name (required for describe/run/compare)"
    )
    sn.add_argument(
        "--method", default="vocab-1", metavar="METHOD",
        help="schedule family for 'run' (default vocab-1)",
    )
    sn.add_argument(
        "--devices", type=int, default=12,
        help="pipeline device count (default 12 — two nodes of 8+4, so "
        "node-level scenarios like slow-node and bandwidth-asymmetric "
        "have a real inter-node boundary to act on)",
    )
    sn.add_argument(
        "--vocab", type=_parse_vocab, default=128 * 1024, metavar="SIZE",
        help="vocabulary size, e.g. 128k or 131072",
    )
    sn.add_argument("--seq", type=int, default=2048, help="sequence length")
    sn.add_argument(
        "--microbatches", type=int, default=32,
        help="microbatches per iteration (default 32 — smaller than the "
        "paper's 128 to keep Monte Carlo interactive)",
    )
    sn.add_argument(
        "--samples", type=int, default=256, metavar="K",
        help="Monte Carlo jitter samples per method (default 256)",
    )
    _add_seed(sn, "sample seed combined with the scenario's base seed")
    _add_format(sn)

    cb = sub.add_parser("calibrate", help=SUBCOMMANDS["calibrate"])
    cb.add_argument(
        "action", choices=["fit", "report", "show"],
        help="fit a profile against simulator ground truth, re-measure a "
        "profile's accuracy ('report', --check gates CI on drift), or "
        "inspect a committed profile ('show')",
    )
    cb.add_argument(
        "--name", default="a100-sim", metavar="NAME",
        help="profile name to fit (default a100-sim)",
    )
    cb.add_argument(
        "--out", default=None, metavar="PATH",
        help="where 'fit' writes the profile JSON (default: the built-in "
        "profiles directory inside the package)",
    )
    cb.add_argument(
        "--profile", default="a100-sim", metavar="NAME_OR_PATH",
        help="profile for 'report'/'show': a resolvable cost-model name "
        "or a profile JSON path (default a100-sim)",
    )
    cb.add_argument(
        "--quick", action="store_true",
        help="seeded subsample of the calibration grid instead of the "
        "full Table 5/6 sweep (what CI runs)",
    )
    cb.add_argument(
        "--seed", type=int, default=None,
        help="grid seed (default: 0 for 'fit', the profile's own seed "
        "for 'report')",
    )
    cb.add_argument(
        "--engine", choices=["auto", "python", "numpy"], default="auto",
        help="least-squares engine; both produce bit-identical fits "
        "(default auto: numpy when installed)",
    )
    cb.add_argument(
        "--check", action="store_true",
        help="'report': exit non-zero when the profile is stale or the "
        "re-measured error exceeds the stored bounds by > --tolerance x",
    )
    cb.add_argument(
        "--tolerance", type=float, default=1.25, metavar="X",
        help="--check slack on the stored per-family error bounds "
        "(default 1.25)",
    )
    _add_format(cb)

    wi = sub.add_parser("whatif", help=SUBCOMMANDS["whatif"])
    wi.add_argument(
        "--devices", type=int, default=8, help="pipeline device count"
    )
    wi.add_argument(
        "--vocab", type=_parse_vocab, default=128 * 1024, metavar="SIZE",
        help="vocabulary size, e.g. 128k or 131072",
    )
    wi.add_argument("--seq", type=int, default=2048, help="sequence length")
    wi.add_argument(
        "--method", default="vocab-1", metavar="METHOD",
        help="schedule family to perturb (default vocab-1)",
    )
    wi.add_argument(
        "--device", type=int, default=-1,
        help="device whose passes slow down; negative counts from the "
        "end of the pipeline (default -1, the last device)",
    )
    wi.add_argument(
        "--factor", type=float, default=1.3,
        help="duration multiplier for the perturbed device (default 1.3)",
    )
    wi.add_argument(
        "--pass-overhead", type=float, default=None, metavar="S",
        help="per-pass host overhead binding in seconds",
    )
    _add_scenario(
        wi, "price the baseline under a registered cluster scenario"
    )
    wi.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="disk-backed plan cache shared with plan/serve runs",
    )
    _add_format(wi)
    _add_common(wi)

    sv = sub.add_parser("serve", help=SUBCOMMANDS["serve"])
    sv.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    sv.add_argument(
        "--port", type=int, default=8181,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    sv.add_argument(
        "--executor", choices=["process", "thread"], default="process",
        help="where CPU-bound planning runs (process pools keep "
        "per-worker caches warm; threads for restricted sandboxes)",
    )
    sv.add_argument(
        "--workers", type=int, default=None, help="max pool workers"
    )
    sv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="disk-backed plan-cache tier shared with CLI/sweep runs",
    )
    sv.add_argument(
        "--lru-size", type=int, default=256, metavar="N",
        help="entries in the in-process LRU tier (default 256)",
    )
    sv.add_argument(
        "--max-cache-entries", type=int, default=1024, metavar="N",
        help="per-kind bound on the disk cache tier (default 1024)",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="admission control: in-flight compute budget per request "
        "class before shedding with 429 (default 64)",
    )
    sv.add_argument(
        "--tenant-rate", type=float, default=None, metavar="R",
        help="admission control: per-tenant token-bucket rate in "
        "requests/s, keyed on the X-Tenant header (default: off)",
    )
    sv.add_argument(
        "--tenant-burst", type=float, default=None, metavar="B",
        help="per-tenant bucket capacity (default: 2x --tenant-rate)",
    )
    sv.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="deadline applied to requests that carry no deadline_ms "
        "field (default: none)",
    )
    sv.add_argument(
        "--breaker-backoff", type=float, default=0.5, metavar="S",
        help="circuit breaker: base backoff in seconds before probing "
        "a broken worker pool, doubled per failed probe (default 0.5)",
    )
    sv.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="arm deterministic fault injection (same spec format as "
        "the REPRO_FAULTS environment variable; chaos testing only)",
    )
    sv.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="run N service shards (subprocesses) behind a "
        "consistent-hash router with failover, hedging and supervised "
        "restarts (default 0 = single process)",
    )
    sv.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="S",
        help="fleet: seconds between supervisor health probes per "
        "shard (default 0.5)",
    )
    sv.add_argument(
        "--restart-backoff", type=float, default=0.25, metavar="S",
        help="fleet: base delay before respawning a dead shard, "
        "doubled per consecutive startup failure (default 0.25)",
    )
    sv.add_argument(
        "--hedge-min-ms", type=float, default=50.0, metavar="MS",
        help="fleet: floor on the hedging delay before a slow "
        "request is duplicated to the ring successor (default 50)",
    )
    sv.add_argument(
        "--hedge-max-ms", type=float, default=2000.0, metavar="MS",
        help="fleet: ceiling on the hedging delay (default 2000)",
    )

    al = sub.add_parser("all", help=SUBCOMMANDS["all"])
    _add_common(al)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "fig2": _cmd_fig2,
        "fig3": _cmd_fig3,
        "table3": _cmd_table3,
        "table5": _cmd_table5,
        "table6": _cmd_table6,
        "appendix-b": _cmd_appendix_b,
        "schedules": _cmd_schedules,
        "plan": _cmd_plan,
        "optimize": _cmd_optimize,
        "scenarios": _cmd_scenarios,
        "calibrate": _cmd_calibrate,
        "whatif": _cmd_whatif,
        "serve": _cmd_serve,
        "all": _cmd_all,
    }
    try:
        result = handlers[args.command](args)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly the way
        # well-behaved Unix tools do instead of dumping a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    # Most handlers print and return None; serve returns an exit code
    # (non-zero when worker processes leaked past shutdown).
    return 0 if result is None else int(result)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
