"""Sweep runners regenerating each table and figure of the paper.

Every runner returns a small result object with the raw numbers plus a
``render()`` method producing the ASCII table the benchmarks print;
paper-reported values are attached side by side where they exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.flops import (
    vocab_to_transformer_compute_ratio,
)
from repro.costmodel.memory import GiB, MemoryModel, vocab_to_transformer_memory_ratio
from repro.harness import paper_data
from repro.harness.experiments import MethodMetrics, run_method, vocab_scaling_factor
from repro.harness.settings import (
    GEMMA2_9B,
    ONE_F_ONE_B_METHODS,
    VHALF_METHODS,
    VOCAB_SIZES,
    model_for_1f1b,
    model_for_vhalf,
    parallel_for,
)
from repro.scheduling.redistribution import redistribute_layers, uniform_layout
from repro.sim import SimulationSetup


@dataclass
class SweepResult:
    """Measured metrics for one (schedule family, gpus, seq) sweep."""

    gpus: int
    seq_length: int
    metrics: dict[tuple[str, int], MethodMetrics] = field(default_factory=dict)
    paper_table: dict | None = None

    def mfu_row(self, method: str) -> list[float | None]:
        return [
            None
            if self.metrics[(method, v)].oom
            else round(self.metrics[(method, v)].mfu_percent, 2)
            for v in self.vocab_sizes
        ]

    def memory_row(self, method: str) -> list[float | None]:
        return [
            round(self.metrics[(method, v)].peak_memory_gb, 2)
            for v in self.vocab_sizes
        ]

    @property
    def vocab_sizes(self) -> list[int]:
        return sorted({v for _, v in self.metrics})

    @property
    def methods(self) -> list[str]:
        seen: list[str] = []
        for method, _ in self.metrics:
            if method not in seen:
                seen.append(method)
        return seen

    def render(self) -> str:
        from repro.harness.tables import format_table

        headers = ["method", "metric"] + [
            f"{v // 1024}k" for v in self.vocab_sizes
        ] + ["source"]
        rows: list[list[object]] = []
        for method in self.methods:
            rows.append([method, "MFU%"] + list(self.mfu_row(method)) + ["sim"])
            paper = self._paper_row(method, "mfu")
            if paper is not None:
                rows.append([method, "MFU%"] + paper + ["paper"])
            rows.append(
                [method, "peakGB"] + list(self.memory_row(method)) + ["sim"]
            )
            paper = self._paper_row(method, "mem")
            if paper is not None:
                rows.append([method, "peakGB"] + paper + ["paper"])
        return format_table(
            headers, rows, title=f"{self.gpus} GPUs, sequence length {self.seq_length}"
        )

    def _paper_row(self, method: str, metric: str) -> list[float | None] | None:
        if self.paper_table is None:
            return None
        entry = self.paper_table.get((self.gpus, self.seq_length, method))
        if entry is None:
            return None
        full = entry[metric]
        # Align with whatever vocabulary subset was simulated.
        index = {v: i for i, v in enumerate(VOCAB_SIZES)}
        return [full[index[v]] for v in self.vocab_sizes]


def run_table5_cell(
    gpus: int,
    seq_length: int,
    vocab_sizes: tuple[int, ...] = VOCAB_SIZES,
    methods: tuple[str, ...] = ONE_F_ONE_B_METHODS,
    num_microbatches: int = 128,
) -> SweepResult:
    """Table 5 / Figures 11–12: methods on 1F1B for one (gpus, seq)."""
    sweep = SweepResult(gpus, seq_length, paper_table=paper_data.TABLE5)
    for vocab in vocab_sizes:
        model = model_for_1f1b(gpus, seq_length, vocab)
        parallel = parallel_for(gpus, num_microbatches)
        for method in methods:
            sweep.metrics[(method, vocab)] = run_method(method, model, parallel)
    return sweep


def run_table6_cell(
    gpus: int,
    seq_length: int,
    vocab_sizes: tuple[int, ...] = VOCAB_SIZES,
    methods: tuple[str, ...] = VHALF_METHODS,
    num_microbatches: int = 128,
) -> SweepResult:
    """Table 6 / Figures 13–14: V-Half baseline vs Vocab-1."""
    sweep = SweepResult(gpus, seq_length, paper_table=paper_data.TABLE6)
    for vocab in vocab_sizes:
        model = model_for_vhalf(gpus, seq_length, vocab)
        parallel = parallel_for(gpus, num_microbatches)
        for method in methods:
            sweep.metrics[(method, vocab)] = run_method(method, model, parallel)
    return sweep


def run_plan(
    devices: int = 8,
    vocab_size: int = 128 * 1024,
    seq_length: int = 2048,
    num_microbatches: int = 128,
    memory_budget_gib: float | None = None,
    methods: tuple[str, ...] | None = None,
    simulate_top_k: int | None = 3,
):
    """Plan the best schedule family for one configuration.

    The CLI-facing wrapper around :func:`repro.planner.plan`: picks the
    paper's Table 1/2 model shape when ``devices`` matches one
    (8/16/24/32 GPUs) and a generic 4-layers-per-device shape
    otherwise, then ranks every known schedule family under the
    memory budget.  Returns a
    :class:`~repro.planner.planner.RankedPlans` (render()-able like
    every other runner result).
    """
    from repro.planner.planner import PlannerConstraints
    from repro.planner.sweep import SweepPoint, plan_point

    constraints = PlannerConstraints(
        memory_budget_gib=memory_budget_gib,
        methods=tuple(methods) if methods else None,
        simulate_top_k=simulate_top_k,
    )
    point = SweepPoint(
        devices, vocab_size, seq_length, num_microbatches, memory_budget_gib
    )
    return plan_point(point, constraints).plans


@dataclass
class Figure2Result:
    """Vocabulary-to-transformer ratios for Gemma2-9B (Figure 2)."""

    vocab_sizes: list[int]
    compute_input: list[float]
    compute_output: list[float]
    memory_input: list[float]
    memory_output: list[float]

    def render(self) -> str:
        from repro.harness.tables import format_table

        rows = []
        for i, v in enumerate(self.vocab_sizes):
            rows.append(
                [
                    f"{v // 1024}k",
                    self.compute_input[i],
                    self.compute_output[i],
                    self.memory_input[i],
                    self.memory_output[i],
                ]
            )
        return format_table(
            ["vocab", "compute(in)", "compute(out)", "memory(in)", "memory(out)"],
            rows,
            title="Figure 2 — vocabulary layer cost in transformer-layer units (Gemma2-9B)",
        )


def run_figure2(
    model: ModelConfig = GEMMA2_9B,
    vocab_sizes: tuple[int, ...] = VOCAB_SIZES,
) -> Figure2Result:
    result = Figure2Result([], [], [], [], [])
    for vocab in vocab_sizes:
        sized = model.replace(vocab_size=vocab)
        c_in, c_out = vocab_to_transformer_compute_ratio(sized)
        m_in, m_out = vocab_to_transformer_memory_ratio(sized)
        result.vocab_sizes.append(vocab)
        result.compute_input.append(round(c_in, 3))
        result.compute_output.append(round(c_out, 3))
        result.memory_input.append(round(m_in, 3))
        result.memory_output.append(round(m_out, 3))
    return result


@dataclass
class Figure3Result:
    """Per-device compute/memory with and without redistribution."""

    devices: int
    uniform_compute: list[float]
    redis_compute: list[float]
    uniform_memory_gb: list[float]
    redis_memory_gb: list[float]
    uniform_layers: list[int]
    redis_layers: list[int]

    def render(self) -> str:
        from repro.harness.tables import format_table

        rows = []
        for d in range(self.devices):
            rows.append(
                [
                    d,
                    self.uniform_layers[d],
                    round(self.uniform_compute[d], 3),
                    round(self.uniform_memory_gb[d], 2),
                    self.redis_layers[d],
                    round(self.redis_compute[d], 3),
                    round(self.redis_memory_gb[d], 2),
                ]
            )
        return format_table(
            [
                "device",
                "layers",
                "compute(s)",
                "paramGB",
                "redis-layers",
                "redis-compute(s)",
                "redis-paramGB",
            ],
            rows,
            title="Figure 3 — layer redistribution, 7B GPT-like model, 128k vocabulary, 16 devices",
        )


def run_figure3(
    num_devices: int = 16,
    vocab_size: int = 128 * 1024,
) -> Figure3Result:
    """7B model of the paper's Figure 3 (32 layers, hidden 4096)."""
    model = ModelConfig(
        num_layers=32,
        hidden_size=4096,
        num_attention_heads=32,
        seq_length=2048,
        vocab_size=vocab_size,
    )
    parallel = ParallelConfig(pipeline_size=num_devices)
    setup = SimulationSetup(model, parallel)
    from repro.sim import PassTimings

    timings = PassTimings(setup)
    memory = MemoryModel()
    plan = redistribute_layers(model, num_devices)
    uniform = uniform_layout(num_devices, model.num_layers)

    def stage_compute(layers: int, has_input: bool, has_output: bool) -> float:
        time = timings.transformer_forward_time(
            layers
        ) + timings.transformer_backward_time(layers, split_weight=False)
        if has_input:
            time += timings.full_input_forward_time() + timings.full_input_backward_time()
        if has_output:
            time += timings.full_output_forward_time() + timings.full_output_backward_time()
        return time

    def stage_memory(layers: int, has_input: bool, has_output: bool) -> float:
        total = memory.transformer_stage_param_bytes(model, layers)
        if has_input:
            total += memory.input_layer_state_bytes(model, setup.padded_vocab_single)
        if has_output:
            total += memory.output_layer_state_bytes(model, setup.padded_vocab_single)
        return total / GiB

    result = Figure3Result(num_devices, [], [], [], [], [], [])
    for d in range(num_devices):
        u_layers = uniform.transformer_layers[d][0]
        r_layers = plan.layers_per_stage[d]
        first, last = d == 0, d == num_devices - 1
        result.uniform_layers.append(u_layers)
        result.redis_layers.append(r_layers)
        result.uniform_compute.append(stage_compute(u_layers, first, last))
        result.redis_compute.append(stage_compute(r_layers, first, last))
        result.uniform_memory_gb.append(stage_memory(u_layers, first, last))
        result.redis_memory_gb.append(stage_memory(r_layers, first, last))
    return result


@dataclass
class Table3Result:
    """Scaling factors of partitioned vocabulary layers (Table 3)."""

    rows: list[tuple[int, str, list[float], list[float]]]  # seq, layer, ours, paper

    def render(self) -> str:
        from repro.harness.tables import format_table

        table_rows = []
        for seq, layer, ours, paper in self.rows:
            table_rows.append(
                [seq, layer, "sim"] + [round(100 * x, 2) for x in ours]
            )
            table_rows.append([seq, layer, "paper"] + list(paper))
        return format_table(
            ["seq", "layer", "source", "8GPU", "16GPU", "32GPU"],
            table_rows,
            title="Table 3 — scaling factor (%) vs linear scaling, 256k vocabulary",
        )


def run_table3(vocab_size: int = 256 * 1024) -> Table3Result:
    rows = []
    for seq in (2048, 4096):
        for layer, algorithm, key in (
            ("output", 1, "output-vocab-1"),
            ("output", 2, "output-vocab-2"),
            ("input", None, "input"),
        ):
            ours = []
            for gpus in (8, 16, 32):
                model = model_for_1f1b(gpus, seq, vocab_size)
                ours.append(
                    vocab_scaling_factor(model, gpus, layer, algorithm)
                )
            rows.append((seq, key, ours, paper_data.TABLE3[(seq, key)]))
    return Table3Result(rows)


@dataclass
class InterlacedAblationResult:
    """Appendix B: interlaced memory factor and sync all-reduce cost."""

    sync_iteration_time: float
    nosync_iteration_time: float
    interlaced_peak_activation_gb: float
    onefoneb_peak_activation_gb: float

    @property
    def speedup_percent(self) -> float:
        """Iteration-time improvement from removing sync all-reduces."""
        return 100.0 * (1.0 - self.nosync_iteration_time / self.sync_iteration_time)

    @property
    def activation_memory_factor(self) -> float:
        """Interlaced peak activation over 1F1B's (Appendix B.1: 1.5×)."""
        return self.interlaced_peak_activation_gb / self.onefoneb_peak_activation_gb

    def render(self) -> str:
        return "\n".join(
            [
                "Appendix B — interlaced pipeline analysis (32 GPUs, ~21B model, seq 4096, 256k vocab)",
                f"  iteration time with sync all-reduces:    {self.sync_iteration_time:.3f}s",
                f"  iteration time without sync all-reduces: {self.nosync_iteration_time:.3f}s",
                f"  speedup from removing sync:              {self.speedup_percent:.2f}%"
                f"   (paper: {paper_data.INTERLACED_SYNC_ABLATION_SPEEDUP}%)",
                f"  activation memory vs 1F1B:               {self.activation_memory_factor:.2f}x"
                "   (paper: 1.5x)",
            ]
        )


def run_interlaced_ablation(
    gpus: int = 32,
    seq_length: int = 4096,
    vocab_size: int = 256 * 1024,
    num_microbatches: int = 128,
) -> InterlacedAblationResult:
    """Appendix B.1/B.2 on the 21B, 32-GPU setting."""
    import dataclasses as _dc

    from repro.harness.experiments import build_schedule
    from repro.sim import RuntimeModel, execute_schedule, memory_report

    model = model_for_1f1b(gpus, seq_length, vocab_size)
    parallel = parallel_for(gpus, num_microbatches)

    def run(sync: bool) -> tuple[float, float]:
        setup = SimulationSetup(model, parallel, interlaced_sync_allreduce=sync)
        schedule = build_schedule("interlaced", setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        report = memory_report(result, setup)
        return result.iteration_time, max(report.per_device_peak_activation) / GiB

    sync_time, interlaced_act = run(True)
    nosync_time, _ = run(False)

    setup = SimulationSetup(model, parallel)
    baseline = build_schedule("baseline", setup)
    base_result = execute_schedule(baseline, RuntimeModel(setup, baseline))
    base_report = memory_report(base_result, setup)
    base_act = max(base_report.per_device_peak_activation) / GiB
    return InterlacedAblationResult(
        sync_iteration_time=sync_time,
        nosync_iteration_time=nosync_time,
        interlaced_peak_activation_gb=interlaced_act,
        onefoneb_peak_activation_gb=base_act,
    )
