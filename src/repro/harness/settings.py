"""The paper's experiment settings (Tables 1 and 2) and related models.

Table 1 (1F1B experiments)::

    GPUs   8      16     32
    size   ≈4B    ≈10B   ≈21B
    layers 32     48     64
    heads  24     32     40
    hidden 3072   4096   5120

Table 2 (V-Half experiments)::

    GPUs   16     24     32
    size   ≈7B    ≈16B   ≈30B
    layers 32     48     64
    heads  32     40     48
    hidden 4096   5120   6144

Both sweeps use sequence length 2048/4096, microbatch size 1, 128
microbatches, vocabulary 32k–256k.
"""

from __future__ import annotations

from repro.config import ModelConfig, ParallelConfig

#: Vocabulary sweep of the evaluation (§6.2).
VOCAB_SIZES: tuple[int, ...] = (32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024)

#: Sequence lengths of the evaluation.
SEQ_LENGTHS: tuple[int, ...] = (2048, 4096)

#: (layers, heads, hidden) per GPU count for the 1F1B sweep (Table 1).
TABLE1_SHAPES: dict[int, tuple[int, int, int]] = {
    8: (32, 24, 3072),
    16: (48, 32, 4096),
    32: (64, 40, 5120),
}

#: (layers, heads, hidden) per GPU count for the V-Half sweep (Table 2).
TABLE2_SHAPES: dict[int, tuple[int, int, int]] = {
    16: (32, 32, 4096),
    24: (48, 40, 5120),
    32: (64, 48, 6144),
}

#: Methods compared on the 1F1B schedule (§6.2).
ONE_F_ONE_B_METHODS: tuple[str, ...] = (
    "baseline",
    "redis",
    "vocab-1",
    "vocab-2",
    "interlaced",
)

#: Methods compared on the V-Half schedule (§6.4).
VHALF_METHODS: tuple[str, ...] = ("vhalf-baseline", "vhalf-vocab-1")

#: Gemma2-9B shape for Figure 2's ratio analysis (Team et al. 2024).
GEMMA2_9B = ModelConfig(
    num_layers=42,
    hidden_size=3584,
    num_attention_heads=16,
    seq_length=4096,
    vocab_size=256 * 1024,
)


def model_for_1f1b(gpus: int, seq_length: int, vocab_size: int) -> ModelConfig:
    """Table 1 model for a GPU count / sequence length / vocabulary."""
    if gpus not in TABLE1_SHAPES:
        raise ValueError(f"1F1B experiments use {sorted(TABLE1_SHAPES)} GPUs, got {gpus}")
    layers, heads, hidden = TABLE1_SHAPES[gpus]
    return ModelConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        seq_length=seq_length,
        vocab_size=vocab_size,
    )


def model_for_vhalf(gpus: int, seq_length: int, vocab_size: int) -> ModelConfig:
    """Table 2 model for a GPU count / sequence length / vocabulary."""
    if gpus not in TABLE2_SHAPES:
        raise ValueError(
            f"V-Half experiments use {sorted(TABLE2_SHAPES)} GPUs, got {gpus}"
        )
    layers, heads, hidden = TABLE2_SHAPES[gpus]
    return ModelConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        seq_length=seq_length,
        vocab_size=vocab_size,
    )


def parallel_for(gpus: int, num_microbatches: int = 128) -> ParallelConfig:
    """The evaluation's ParallelConfig (microbatch size 1, m=128)."""
    return ParallelConfig(
        pipeline_size=gpus,
        num_microbatches=num_microbatches,
        microbatch_size=1,
    )
