"""Plain-text table rendering for benchmark and CLI output."""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, width: int) -> str:
    if value is None:
        text = "OOM"
    elif isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table; floats at two decimals, None → "OOM"."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("all rows must have one cell per header")
    rendered = [
        [_cell(value, 0).strip() for value in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    label: str,
    vocab_sizes: Sequence[int],
    ours: Sequence[float | None],
    paper: Sequence[float | None],
) -> list[list[object]]:
    """Rows interleaving simulated and paper values per vocabulary size."""
    rows: list[list[object]] = []
    for v, mine, theirs in zip(vocab_sizes, ours, paper):
        rows.append([label, f"{v // 1024}k", mine, theirs])
    return rows
