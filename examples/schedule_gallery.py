#!/usr/bin/env python
"""Scenario: visual tour of the pipeline schedules as ASCII timelines.

Renders the executed steady state of every schedule the paper
discusses — baseline 1F1B (with its vocabulary bubbles), Redis, both
Vocabulary Parallelism algorithms, the interlaced pipeline, and V-Half
with and without vocabulary passes — the text equivalent of Figures 1,
10, 15 and 16.

Run:  python examples/schedule_gallery.py [--devices 4] [--vocab-k 256]
"""

import argparse

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import build_schedule
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    live_microbatch_peaks,
    render_timeline,
)

METHODS = (
    "baseline",
    "redis",
    "vocab-1",
    "vocab-2",
    "interlaced",
    "vhalf-baseline",
    "vhalf-vocab-1",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--vocab-k", type=int, default=256)
    parser.add_argument("--microbatches", type=int, default=24)
    parser.add_argument("--width", type=int, default=110)
    args = parser.parse_args()

    p = args.devices
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=2048,
        num_attention_heads=16,
        seq_length=2048,
        vocab_size=args.vocab_k * 1024,
    )
    parallel = ParallelConfig(pipeline_size=p, num_microbatches=args.microbatches)
    setup = SimulationSetup(model, parallel)

    legend = "legend: F/B/W transformer fwd/bwd/weight-grad, S/T output-layer, "
    legend += "i/b input-layer, V/v interlaced vocab segments, . idle"
    print(legend)
    for method in METHODS:
        schedule = build_schedule(method, setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        live = [round(x, 1) for x in live_microbatch_peaks(result)]
        window = (result.iteration_time * 0.38, result.iteration_time * 0.62)
        print("\n" + "=" * len(legend))
        print(f"{method}: mean bubble "
              f"{100 * result.mean_bubble_fraction():.1f}%, "
              f"live microbatches per device {live}")
        print(render_timeline(result, width=args.width, mode="type",
                              time_range=window))


if __name__ == "__main__":
    main()
