#!/usr/bin/env python
"""Scenario: how far can you push the vocabulary of a Gemma2-9B-style
model under pipeline parallelism before the baseline breaks?

The paper's motivation (Figure 2) made concrete: sweep the vocabulary
from 32k to 512k on an 8-device pipeline and watch what happens to the
baseline (output layer on the last stage) versus Vocabulary
Parallelism — throughput, peak memory, and where the baseline OOMs on
80 GB devices while Vocab-2 keeps cruising.

Run:  python examples/gemma_vocab_pressure.py
"""

from repro.config import ModelConfig, ParallelConfig
from repro.costmodel.flops import vocab_to_transformer_compute_ratio
from repro.costmodel.memory import vocab_to_transformer_memory_ratio
from repro.harness.experiments import run_method
from repro.harness.tables import format_table

# Gemma2-9B-ish shape, padded to divide the 8-device pipeline evenly
# (42 layers -> 40; the two layers do not change the story).
BASE = ModelConfig(
    num_layers=40,
    hidden_size=3584,
    num_attention_heads=16,
    seq_length=4096,
    vocab_size=256 * 1024,
)
DEVICES = 8
VOCABS = [32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024]


def main() -> None:
    print("Vocabulary pressure on a Gemma2-9B-style model, "
          f"{DEVICES}-device pipeline, sequence length {BASE.seq_length}\n")

    ratio_rows = []
    for vocab in VOCABS:
        model = BASE.replace(vocab_size=vocab)
        _, compute = vocab_to_transformer_compute_ratio(model)
        _, memory = vocab_to_transformer_memory_ratio(model)
        ratio_rows.append([f"{vocab // 1024}k", compute, memory])
    print(format_table(
        ["vocab", "output compute (layers)", "output memory (layers)"],
        ratio_rows,
        title="Output layer cost in transformer-layer units (Figure 2 style)",
    ))
    print()

    rows = []
    parallel = ParallelConfig(pipeline_size=DEVICES, num_microbatches=64)
    for vocab in VOCABS:
        model = BASE.replace(vocab_size=vocab)
        for method in ("baseline", "vocab-2"):
            m = run_method(method, model, parallel)
            rows.append([
                f"{vocab // 1024}k",
                method,
                None if m.oom else round(m.mfu_percent, 2),
                round(m.peak_memory_gb, 2),
                round(m.memory_spread_gb, 2),
                "OOM!" if m.oom else "",
            ])
    print(format_table(
        ["vocab", "method", "MFU %", "peak GB", "spread GB", ""],
        rows,
        title="Simulated training iteration (A100-80G pipeline)",
    ))

    print("\nReading: the baseline's last pipeline stage pays the whole "
          "output layer —\nits MFU decays like 1/(1 + V·k) while Vocab-2 "
          "stays flat and keeps memory balanced.")


if __name__ == "__main__":
    main()
