#!/usr/bin/env python
"""Plan the best pipeline schedule for a model, then sweep a grid.

Demonstrates the :mod:`repro.planner` subsystem in three steps:

1. Rank every schedule family for the paper's ≈4B model at a 256k
   vocabulary on 8 devices — the planner prices all families with the
   analytic cost model and verifies the frontrunners with the
   discrete-event simulator.
2. Tighten the per-device memory budget and watch the ranking change:
   schedules that blow the budget are rejected with a reason.
3. Sweep a (devices × vocabulary) grid in parallel and print the
   winning family at every point — the planner-level view of the
   paper's Tables 5/6.

Run:  python examples/plan_schedule.py
"""

from repro import ModelConfig, ParallelConfig
from repro.api import PlannerConstraints, grid, plan, sweep
from repro.planner.sweep import best_method_table


def step1_rank_families() -> None:
    print("=" * 72)
    print("1. Rank all schedule families (paper's 4B model, 256k vocabulary)")
    model = ModelConfig(num_layers=32, hidden_size=3072,
                        num_attention_heads=24, seq_length=2048,
                        vocab_size=256 * 1024)
    parallel = ParallelConfig(pipeline_size=8, num_microbatches=64)
    plans = plan(model, parallel)
    print(plans.render())
    best = plans.best
    print(f"\n   planner picks: {best.method} "
          f"({best.iteration_time:.3f}s/iter, {100 * best.mfu:.1f}% MFU, "
          f"{best.peak_memory_gb:.1f} GiB peak)")


def step2_memory_budget() -> None:
    print("=" * 72)
    print("2. Same config under a 20 GiB per-device budget")
    model = ModelConfig(num_layers=32, hidden_size=3072,
                        num_attention_heads=24, seq_length=2048,
                        vocab_size=256 * 1024)
    parallel = ParallelConfig(pipeline_size=8, num_microbatches=64)
    plans = plan(model, parallel, PlannerConstraints(memory_budget_gib=20.0))
    print(plans.render())


def step3_sweep() -> None:
    print("=" * 72)
    print("3. Grid sweep: winning family per (devices, vocabulary)")
    points = grid(devices=(4, 8), vocab_sizes=(32 * 1024, 256 * 1024),
                  microbatches=(32,))
    outcomes = sweep(points, PlannerConstraints(simulate_top_k=2),
                     executor="process")
    print(best_method_table(outcomes))


def step4_scenario() -> None:
    print("=" * 72)
    print("4. Robust planning on a straggler cluster (p95 under jitter)")
    model = ModelConfig(num_layers=32, hidden_size=3072,
                        num_attention_heads=24, seq_length=2048,
                        vocab_size=256 * 1024)
    # Two nodes of four devices: slow-node throttles the *second* node
    # only, a genuine straggler (on a single-node pipeline it would
    # just slow everything uniformly).
    parallel = ParallelConfig(pipeline_size=8, num_microbatches=32,
                              devices_per_node=4)
    plans = plan(model, parallel, PlannerConstraints(simulate_top_k=3),
                 scenario="slow-node", robustness="p95")
    print(plans.render())


if __name__ == "__main__":
    step1_rank_families()
    step2_memory_budget()
    step3_sweep()
    step4_scenario()
