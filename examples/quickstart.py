#!/usr/bin/env python
"""Quickstart: partition an output layer, verify exactness, schedule it.

Walks through the paper's core ideas in three steps:

1. Partition a vocabulary across 4 simulated pipeline devices and run
   the output layer with Algorithm 2 (one communication barrier),
   checking exactness against a single-device reference.
2. Build the 1F1B + Vocabulary Parallelism schedule and inspect its
   activation-memory claim (p + 1 microbatches on device 0).
3. Simulate a training iteration of a 4B model at a 256k vocabulary
   and compare the baseline's MFU with Vocab-2's.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ModelConfig, ParallelConfig, OutputLayerAlg2, VocabPartition
from repro.costmodel.mfu import mfu
from repro.harness.experiments import build_schedule
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    live_microbatch_peaks,
    memory_report,
)
from repro.vocab.reference import reference_output_layer


def step1_partitioned_output_layer() -> None:
    print("=" * 72)
    print("1. Partitioned output layer (Algorithm 2, one barrier)")
    rng = np.random.default_rng(0)
    tokens, hidden, vocab, devices = 128, 64, 1000, 4

    partition = VocabPartition(vocab, devices)
    print(f"   vocabulary {vocab} padded to {partition.padded_size} "
          f"({partition.shard_size} rows per device)")

    x = rng.normal(size=(tokens, hidden))
    weight = rng.normal(size=(vocab, hidden))
    labels = rng.integers(0, vocab, size=tokens)

    layer = OutputLayerAlg2.from_full_weight(partition, weight)
    result = layer.run(x, labels, grad_scale=1.0 / tokens)
    print(f"   mean loss = {result.losses.mean():.4f}  "
          f"(uniform would be {np.log(partition.padded_size):.4f})")
    print(f"   communication barriers: {result.num_barriers}  "
          f"(naïve needs 3, Algorithm 1 needs 2)")

    ref_losses, ref_gx, _ = reference_output_layer(
        x, partition.pad_weight(weight), labels, grad_scale=1.0 / tokens
    )
    print(f"   max |Δloss| vs single-device reference: "
          f"{np.abs(result.losses - ref_losses).max():.2e}")
    print(f"   max |Δ∇X|  vs single-device reference: "
          f"{np.abs(result.grad_input - ref_gx).max():.2e}")


def step2_schedule() -> None:
    print("=" * 72)
    print("2. 1F1B schedule with vocabulary passes (Figure 10)")
    model = ModelConfig(num_layers=16, hidden_size=2048,
                        num_attention_heads=16, seq_length=2048,
                        vocab_size=128 * 1024)
    parallel = ParallelConfig(pipeline_size=4, num_microbatches=32)
    setup = SimulationSetup(model, parallel)
    for method, expected in (("baseline", 4), ("vocab-1", 6), ("vocab-2", 5)):
        schedule = build_schedule(method, setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        live = live_microbatch_peaks(result)[0]
        print(f"   {method:10s} device-0 holds {live:.0f} microbatches "
              f"of activations (paper: {expected})")


def step3_throughput() -> None:
    print("=" * 72)
    print("3. Simulated iteration of the paper's 4B model, 256k vocabulary")
    model = ModelConfig(num_layers=32, hidden_size=3072,
                        num_attention_heads=24, seq_length=2048,
                        vocab_size=256 * 1024)
    parallel = ParallelConfig(pipeline_size=8, num_microbatches=128)
    setup = SimulationSetup(model, parallel)
    for method in ("baseline", "vocab-2"):
        schedule = build_schedule(method, setup)
        result = execute_schedule(schedule, RuntimeModel(setup, schedule))
        report = memory_report(result, setup)
        u = 100 * mfu(model, parallel, setup.hardware, result.iteration_time)
        print(f"   {method:10s} MFU {u:5.2f}%   peak memory "
              f"{report.peak / 2**30:5.2f} GB   "
              f"spread {report.spread / 2**30:5.2f} GB")
    print("   (paper, Table 5: baseline 25.23% / 25.64 GB, "
          "Vocab-2 49.69% / 17.78 GB)")


if __name__ == "__main__":
    step1_partitioned_output_layer()
    step2_schedule()
    step3_throughput()
