#!/usr/bin/env python
"""Scenario: end-to-end training with vocabulary-parallel layers.

Trains the tiny NumPy LM twice on the same synthetic corpus from the
same initialization — once dense, once with the input embedding and the
Algorithm-2 output layer partitioned across simulated pipeline ranks —
and prints both loss curves side by side.  This is the paper's
Appendix E / Figure 17 correctness argument made runnable on a laptop.

Run:  python examples/train_vocab_parallel.py [--ranks 4] [--steps 200]
"""

import argparse

import numpy as np

from repro.models import TinyLM, TinyLMConfig, VocabParallelLM, make_corpus, train
from repro.models.tiny_lm import init_parameters
from repro.vocab import VocabPartition


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--algorithm", choices=["naive", "alg1", "alg2"],
                        default="alg2")
    args = parser.parse_args()

    vocab, hidden, blocks, seq = args.vocab, 24, 2, 96
    partition = VocabPartition(vocab, args.ranks)
    config = TinyLMConfig(vocab, hidden, blocks, seq,
                          padded_vocab_size=partition.padded_size)
    params = init_parameters(config, seed=11)
    corpus = make_corpus(vocab, seq, num_batches=8, noise=0.15)

    print(f"vocab {vocab} (padded {partition.padded_size}) over "
          f"{args.ranks} ranks, output layer = {args.algorithm}, "
          f"{args.steps} Adam steps\n")

    reference = train(
        TinyLM(config, params={k: v.copy() for k, v in params.items()}),
        corpus, steps=args.steps,
    )
    parallel = train(
        VocabParallelLM(
            TinyLMConfig(vocab, hidden, blocks, seq),
            args.ranks, algorithm=args.algorithm,
            params={k: v.copy() for k, v in params.items()},
        ),
        corpus, steps=args.steps,
    )

    print(f"{'step':>6} {'reference':>12} {'vocab-parallel':>15} {'|Δ|':>10}")
    for i in range(0, args.steps, max(1, args.steps // 12)):
        diff = abs(reference.losses[i] - parallel.losses[i])
        print(f"{i:>6} {reference.losses[i]:>12.6f} "
              f"{parallel.losses[i]:>15.6f} {diff:>10.2e}")
    max_diff = max(abs(a - b) for a, b in zip(reference.losses, parallel.losses))
    print(f"\nfinal: ref {reference.final_loss:.6f}  "
          f"parallel {parallel.final_loss:.6f}  "
          f"(uniform baseline {np.log(partition.padded_size):.4f})")
    print(f"max |Δloss| over the whole run: {max_diff:.3e}")
    assert max_diff < 1e-8, "vocabulary-parallel training diverged from reference"
    print("loss curves identical to float tolerance — Figure 17 reproduced.")


if __name__ == "__main__":
    main()
