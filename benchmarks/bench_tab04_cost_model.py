"""Table 4 — compute FLOPs and parameter memory of each layer type.

Regenerates Appendix A's table symbolically and checks the closed
forms against brute-force counting of the constituent matmuls.
"""

from repro.config import ModelConfig
from repro.costmodel import (
    input_layer_flops,
    output_layer_flops,
    transformer_layer_flops,
    input_layer_param_bytes,
    output_layer_param_bytes,
    transformer_layer_param_bytes,
)
from repro.harness.tables import format_table


def _model(vocab=131072):
    return ModelConfig(
        num_layers=32,
        hidden_size=3072,
        num_attention_heads=24,
        seq_length=2048,
        vocab_size=vocab,
    )


def test_tab04_cost_model(benchmark, record):
    model = _model()

    def build_rows():
        b, s, h, v = 1, model.seq_length, model.hidden_size, model.vocab_size
        return [
            [
                "transformer",
                transformer_layer_flops(model).total,
                b * s * h * (72 * h + 12 * s),
                transformer_layer_param_bytes(model),
                24 * h * h,
            ],
            [
                "input",
                input_layer_flops(model).total,
                3 * b * s * h,
                input_layer_param_bytes(model),
                2 * h * v,
            ],
            [
                "output",
                output_layer_flops(model).total,
                6 * b * s * h * v,
                output_layer_param_bytes(model),
                2 * h * v,
            ],
        ]

    rows = benchmark(build_rows)
    for row in rows:
        assert row[1] == row[2], row[0]
        assert row[3] == row[4], row[0]
    table = format_table(
        ["layer", "flops(model)", "flops(formula)", "bytes(model)", "bytes(formula)"],
        rows,
        title="Table 4 — compute and memory cost per layer (b=1, s=2048, h=3072, V=128k)",
    )
    # The matmul decomposition of the forward pass agrees with the
    # closed form's dominant term (2bsh(12h + 2s) per layer forward).
    fwd = transformer_layer_flops(model).forward
    b, s, h = 1, model.seq_length, model.hidden_size
    matmuls = 2 * b * s * h * (3 * h) + 2 * b * s * s * h * 2 + (
        2 * b * s * h * h + 2 * b * s * h * 8 * h
    )
    assert abs(fwd - matmuls) / fwd < 1e-12
    record("tab04_cost_model", table)
