"""Figure 2 — vocabulary-layer cost relative to transformer layers.

Gemma2-9B's output layer grows to ≈5 transformer layers of compute and
≈6–7 layers of parameter memory at a 256k vocabulary — the motivating
observation of the paper.
"""

from repro.harness.runner import run_figure2


def test_fig02_gemma2_ratios(benchmark, record):
    result = benchmark(run_figure2)
    record("fig02_vocab_ratios", result.render())
    # Paper: output layer ≈ 5× compute, ≈ 7× memory at 256k.
    assert 4.0 < result.compute_output[-1] < 6.5
    assert 5.0 < result.memory_output[-1] < 8.0
    # Input layer: heavy on memory, negligible on compute.
    assert result.compute_input[-1] < 0.05
    assert result.memory_input[-1] == result.memory_output[-1]
    # Ratios grow monotonically with vocabulary size.
    assert result.compute_output == sorted(result.compute_output)
    assert result.memory_output == sorted(result.memory_output)
