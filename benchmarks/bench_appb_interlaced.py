"""Appendix B — interlaced pipeline memory factor and sync ablation.

B.1: the interlaced building block stretches 1F1B's lifespan from 3p to
≈4.5p → 1.5× peak activation memory.  B.2: removing the synchronous
all-reduces from the interlaced vocabulary segments recovered 10.95 %
of iteration time at 32 GPUs in the paper; the α–β model reproduces the
effect with no tuned constant.
"""

from repro.harness.runner import run_interlaced_ablation

from conftest import bench_microbatches


def test_appb_interlaced_ablation(benchmark, record):
    result = benchmark.pedantic(
        lambda: run_interlaced_ablation(num_microbatches=bench_microbatches()),
        rounds=1,
        iterations=1,
    )
    record("appb_interlaced", result.render())
    # B.1 — ≈1.5× activation memory vs 1F1B.
    assert 1.3 < result.activation_memory_factor < 1.7
    # B.2 — sync all-reduces cost ≈11 % end to end (we land 7–13 %).
    assert 5.0 < result.speedup_percent < 14.0
