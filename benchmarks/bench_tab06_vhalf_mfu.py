"""Table 6 / Figure 13 — throughput on the V-Half schedule.

V-Half baseline vs Vocab-1 across the paper's three GPU counts: the
baseline (input layer on stage 0 and output layer on stage 2p-1 — both
device 0) collapses as the vocabulary grows while Vocab-1 stays flat,
by 7 % to 143+ % in the paper.
"""

import pytest

from repro.harness.runner import run_table6_cell

from conftest import bench_microbatches

PANELS = [(16, 2048), (16, 4096), (24, 2048), (24, 4096), (32, 2048), (32, 4096)]


@pytest.mark.parametrize("gpus,seq", PANELS, ids=[f"{g}gpu-{s}" for g, s in PANELS])
def test_tab06_mfu_panel(benchmark, record, gpus, seq):
    sweep = benchmark.pedantic(
        lambda: run_table6_cell(gpus, seq, num_microbatches=bench_microbatches()),
        rounds=1,
        iterations=1,
    )
    record(f"tab06_fig13_mfu_{gpus}gpu_{seq}", sweep.render())

    baseline = sweep.mfu_row("vhalf-baseline")
    vocab = sweep.mfu_row("vhalf-vocab-1")
    valid_base = [v for v in baseline if v is not None]
    # Baseline collapses with vocabulary (paper: 46 → 20 at 16 GPUs).
    assert valid_base[-1] < 0.7 * valid_base[0]
    # Vocab-1 flat and above baseline everywhere.
    valid_vocab = [v for v in vocab if v is not None]
    assert min(valid_vocab) > 0.9 * max(valid_vocab)
    for b, v in zip(baseline, vocab):
        if b is not None and v is not None:
            assert v > b
    # The gap widens dramatically at 256k (paper: up to 143 %).
    if baseline[-1] is not None:
        assert vocab[-1] > 1.5 * baseline[-1]
