"""Figure 17 / Appendix E — convergence of the vocabulary-parallel model.

The paper trains its Megatron implementation against the original
codebase and finds matching loss curves.  Here the vocabulary-parallel
NumPy LM (partitioned input + Algorithm-1/2 output layers over 4 and 8
simulated ranks) trains against the dense reference from identical
initialization — curves agree to float tolerance while the loss drops
well below the uniform baseline.
"""

import numpy as np

from repro.models import TinyLM, TinyLMConfig, VocabParallelLM, make_corpus, train
from repro.models.tiny_lm import init_parameters
from repro.vocab import VocabPartition

V, H, BLOCKS, S = 64, 24, 2, 96
STEPS = 150


def _paired_run(ranks: int, algorithm: str):
    part = VocabPartition(V, ranks)
    config = TinyLMConfig(V, H, BLOCKS, S, padded_vocab_size=part.padded_size)
    params = init_parameters(config, seed=11)
    corpus = make_corpus(V, S, 8, noise=0.15)
    ref = train(
        TinyLM(config, params={k: v.copy() for k, v in params.items()}),
        corpus,
        steps=STEPS,
    )
    vp = train(
        VocabParallelLM(
            TinyLMConfig(V, H, BLOCKS, S),
            ranks,
            algorithm=algorithm,
            params={k: v.copy() for k, v in params.items()},
        ),
        corpus,
        steps=STEPS,
    )
    return ref, vp


def test_fig17_convergence(benchmark, record):
    (ref, vp4) = benchmark.pedantic(
        lambda: _paired_run(4, "alg1"), rounds=1, iterations=1
    )
    _, vp8 = _paired_run(8, "alg2")

    max_diff4 = max(abs(a - b) for a, b in zip(ref.losses, vp4.losses))
    lines = [
        "Figure 17 — convergence: reference vs vocabulary-parallel TinyLM",
        f"  steps={STEPS}, vocab={V}, ranks=4 (Alg1) and 8 (Alg2)",
        f"  initial loss: {ref.losses[0]:.4f}  (uniform: {np.log(V):.4f})",
        f"  final loss:   ref={ref.final_loss:.4f}  vp4={vp4.final_loss:.4f}  "
        f"vp8={vp8.final_loss:.4f}",
        f"  max |Δloss| over the p=4 trajectory: {max_diff4:.3e}",
        "  loss curve (every 15 steps):",
    ]
    for i in range(0, STEPS, 15):
        lines.append(
            f"    step {i:>3}: ref={ref.losses[i]:.6f}  vp4={vp4.losses[i]:.6f}"
        )
    record("fig17_convergence", "\n".join(lines))

    assert max_diff4 < 1e-9
    assert vp4.final_loss < 0.75 * vp4.losses[0]  # genuinely learning
    # p=8 / Alg2 run trains equivalently (padding differs from p=4, so
    # compare convergence quality, not the exact trajectory).
    assert abs(vp8.final_loss - vp4.final_loss) < 0.25


def test_fig17_training_step_speed(benchmark):
    """Time one vocabulary-parallel training step (p=4, Algorithm 2)."""
    config = TinyLMConfig(V, H, BLOCKS, S)
    model = VocabParallelLM(config, 4, algorithm="alg2", seed=5)
    corpus = make_corpus(V, S, 1)
    tokens, labels = corpus[0]
    loss, grads = benchmark(lambda: model.loss_and_grads(tokens, labels))
    assert np.isfinite(loss)
    assert set(grads) == set(model.params)
