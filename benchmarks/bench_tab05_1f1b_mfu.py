"""Table 5 / Figure 11 — MFU of all five methods on 1F1B.

Runs the full method × vocabulary grid for each of the paper's
(GPU count, sequence length) panels and records the MFU comparison
against the paper's measurements.  Shape assertions encode the paper's
findings: the baseline collapses with vocabulary size, Redis recovers
partially, Vocab-1/2 stay flat, and the interlaced pipeline falls
behind Vocabulary Parallelism on multi-node runs.
"""

import pytest

from repro.harness.runner import run_table5_cell

from conftest import bench_microbatches

PANELS = [(8, 2048), (8, 4096), (16, 2048), (16, 4096), (32, 2048), (32, 4096)]


@pytest.mark.parametrize("gpus,seq", PANELS, ids=[f"{g}gpu-{s}" for g, s in PANELS])
def test_tab05_mfu_panel(benchmark, record, gpus, seq):
    sweep = benchmark.pedantic(
        lambda: run_table5_cell(gpus, seq, num_microbatches=bench_microbatches()),
        rounds=1,
        iterations=1,
    )
    record(f"tab05_fig11_mfu_{gpus}gpu_{seq}", sweep.render())

    baseline = sweep.mfu_row("baseline")
    redis = sweep.mfu_row("redis")
    vocab1 = sweep.mfu_row("vocab-1")
    vocab2 = sweep.mfu_row("vocab-2")
    interlaced = sweep.mfu_row("interlaced")

    # Baseline MFU collapses as vocabulary grows (paper: −45 % .. −55 %).
    assert baseline[-1] < 0.65 * baseline[0]
    # Redis partially recovers but stays below Vocabulary Parallelism.
    if redis[-1] is not None:
        assert baseline[-1] < redis[-1] < vocab1[-1]
    # Vocab-1/2 flat within a few percent across the vocabulary sweep.
    for row in (vocab1, vocab2):
        valid = [v for v in row if v is not None]
        assert min(valid) > 0.93 * max(valid)
        # And beat the baseline by 5–51+ % at the largest vocabulary.
        assert valid[-1] > 1.05 * baseline[0] * (baseline[-1] / baseline[0]) * 1.0
        assert valid[-1] > 1.3 * baseline[-1]
    # Multi-node: interlaced trails Vocabulary Parallelism (§6.3).
    if gpus > 8 and interlaced[-1] is not None:
        assert interlaced[-1] < vocab1[-1]
