"""Table 6 / Figure 14 — memory balance on the V-Half schedule.

The paper's headline memory result: the V-Half baseline spreads tens of
GB between device 0 (both vocabulary layers) and the rest — OOMing at
32 GPUs / 256k — while Vocab-1 balances every device to within the
positional-embedding constant (< 2.5 GB).
"""

import pytest

from repro.harness.runner import run_table6_cell

from conftest import bench_microbatches

PANELS = [(16, 2048), (32, 4096)]


@pytest.mark.parametrize("gpus,seq", PANELS, ids=[f"{g}gpu-{s}" for g, s in PANELS])
def test_tab06_memory_panel(benchmark, record, gpus, seq):
    sweep = benchmark.pedantic(
        lambda: run_table6_cell(gpus, seq, num_microbatches=bench_microbatches()),
        rounds=1,
        iterations=1,
    )
    lines = [sweep.render(), "", "per-device peak spread (max - min, GB):"]
    for vocab_size in sweep.vocab_sizes:
        base = sweep.metrics[("vhalf-baseline", vocab_size)]
        voc = sweep.metrics[("vhalf-vocab-1", vocab_size)]
        lines.append(
            f"  {vocab_size // 1024:>4}k  baseline={base.memory_spread_gb:6.2f}  "
            f"vocab-1={voc.memory_spread_gb:5.2f}"
        )
    record(f"tab06_fig14_memory_{gpus}gpu_{seq}", "\n".join(lines))

    largest = sweep.vocab_sizes[-1]
    base = sweep.metrics[("vhalf-baseline", largest)]
    voc = sweep.metrics[("vhalf-vocab-1", largest)]
    # Baseline: tens of GB of spread at 256k (paper: up to 45 GB).
    assert base.memory_spread_gb > 10.0
    # Vocab-1: balanced within the small positional constant (< 2.5 GB).
    assert voc.memory_spread_gb < 2.5
    # Vocab-1's peak far below the baseline's at 256k.
    assert voc.peak_memory_gb < 0.75 * base.peak_memory_gb
    if (gpus, seq) == (32, 4096):
        # Paper: baseline OOMs at 256k on 32 GPUs.  Our calibration
        # puts it right at the 80 GB edge (±3 GB); either way the
        # qualitative story holds: baseline at capacity, Vocab-1 with
        # tens of GB of headroom.
        assert base.peak_memory_gb > 75.0
        assert not voc.oom
        assert voc.peak_memory_gb < 60.0
