"""Figure 3 — why layer redistribution does not fix the imbalance.

The paper's 7B example (16 devices, 128k vocabulary): redistribution
evens out *compute* but cannot touch the *parameter memory* imbalance,
and granularity limits how even compute can get.
"""

from repro.harness.runner import run_figure3


def test_fig03_redistribution(benchmark, record):
    result = benchmark(run_figure3)
    record("fig03_redistribution", result.render())
    uniform_compute_spread = max(result.uniform_compute) - min(result.uniform_compute)
    redis_compute_spread = max(result.redis_compute) - min(result.redis_compute)
    # Compute rebalancing works...
    assert redis_compute_spread < 0.5 * uniform_compute_spread
    # ...but residual compute imbalance remains (coarse granularity).
    mean_compute = sum(result.redis_compute) / len(result.redis_compute)
    assert max(result.redis_compute) > 1.05 * mean_compute
    # ...and parameter memory stays as imbalanced as before.
    redis_mem_spread = max(result.redis_memory_gb) - min(result.redis_memory_gb)
    assert redis_mem_spread > 3.0
    # The output stage sheds transformer layers (output ≈ 2.4 layers).
    assert result.redis_layers[-1] < result.uniform_layers[-1]
