"""Table 5 / Figure 12 — peak memory of all five methods on 1F1B.

The paper's memory findings: baseline/Redis peak memory grows steeply
with the vocabulary (the end stages hold 2hV of training state each);
the Vocab methods grow only by the small shard/activation constant;
Vocab-2 sits one microbatch of activations below Vocab-1; interlaced
pays 1.5× activations and OOMs on the 32-GPU / 4096 panel.
"""

import pytest

from repro.harness.runner import run_table5_cell

from conftest import bench_microbatches

PANELS = [(8, 2048), (16, 4096), (32, 4096)]


@pytest.mark.parametrize("gpus,seq", PANELS, ids=[f"{g}gpu-{s}" for g, s in PANELS])
def test_tab05_memory_panel(benchmark, record, gpus, seq):
    sweep = benchmark.pedantic(
        lambda: run_table5_cell(gpus, seq, num_microbatches=bench_microbatches()),
        rounds=1,
        iterations=1,
    )
    record(f"tab05_fig12_memory_{gpus}gpu_{seq}", sweep.render())

    baseline = sweep.memory_row("baseline")
    vocab1 = sweep.memory_row("vocab-1")
    vocab2 = sweep.memory_row("vocab-2")
    interlaced = sweep.memory_row("interlaced")

    # Baseline grows steeply with vocabulary; Vocab stays nearly flat.
    base_growth = baseline[-1] - baseline[0]
    vocab_growth = vocab1[-1] - vocab1[0]
    assert base_growth > 3.0 * max(vocab_growth, 0.1)
    # Vocab-2 ≤ Vocab-1 (one fewer in-flight microbatch).
    assert all(v2 < v1 for v1, v2 in zip(vocab1, vocab2))
    # Vocab beats baseline at the largest vocabulary.
    assert vocab1[-1] < baseline[-1]
    # Interlaced pays more activation memory than Vocab-1.
    assert all(i > v for i, v in zip(interlaced, vocab1))
    if (gpus, seq) == (32, 4096):
        # Paper: interlaced OOMs here; our model puts it within a few
        # GB of the 80 GB limit.
        assert interlaced[-1] > 70.0
