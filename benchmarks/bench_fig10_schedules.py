"""Figures 9/10/16 — vocabulary-parallel building blocks and schedules.

Validates the activation-memory annotations of Figure 10 on executed
schedules (p+2 microbatches for Algorithm 1, p+1 for Algorithm 2, p for
plain 1F1B), records ASCII renderings of the schedules, and includes
the V-Half block (Figure 16 / Appendix D).
"""

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import build_schedule
from repro.sim import (
    RuntimeModel,
    SimulationSetup,
    execute_schedule,
    live_microbatch_peaks,
    render_timeline,
)

from conftest import bench_microbatches


def _setup(p=4):
    model = ModelConfig(
        num_layers=4 * p,
        hidden_size=2048,
        num_attention_heads=16,
        seq_length=2048,
        vocab_size=128 * 1024,
    )
    return SimulationSetup(
        model, ParallelConfig(pipeline_size=p, num_microbatches=bench_microbatches(32))
    )


def test_fig10_1f1b_vocab_schedules(benchmark, record):
    setup = _setup()
    p = setup.parallel.pipeline_size

    def run_all():
        out = {}
        for method in ("baseline", "vocab-1", "vocab-2"):
            schedule = build_schedule(method, setup)
            out[method] = execute_schedule(schedule, RuntimeModel(setup, schedule))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    live = {m: live_microbatch_peaks(r)[0] for m, r in results.items()}
    assert live["baseline"] == p
    assert live["vocab-1"] == p + 2
    assert live["vocab-2"] == p + 1
    lines = [
        "Figure 10 — 1F1B with Vocabulary Parallelism "
        f"(p={p}; device-0 live microbatches: {live})",
    ]
    for method, result in results.items():
        window = (result.iteration_time * 0.35, result.iteration_time * 0.65)
        lines.append(f"\n[{method}] steady state:")
        lines.append(render_timeline(result, width=110, mode="type", time_range=window))
    record("fig10_schedules", "\n".join(lines))


def test_fig16_vhalf_block(benchmark, record):
    setup = _setup()

    def run_both():
        out = {}
        for method in ("vhalf-baseline", "vhalf-vocab-1"):
            schedule = build_schedule(method, setup)
            out[method] = execute_schedule(schedule, RuntimeModel(setup, schedule))
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base_live = live_microbatch_peaks(results["vhalf-baseline"])
    vocab_live = live_microbatch_peaks(results["vhalf-vocab-1"])
    # V-Half balances memory; vocabulary passes add a small constant.
    assert max(base_live) - min(base_live) <= 1.0
    assert max(vocab_live) <= max(base_live) + 2.5
    lines = [
        "Figure 16 / Appendix D — V-Half with vocabulary passes "
        f"(live microbatches per device: base={[round(x,2) for x in base_live]}, "
        f"vocab={[round(x,2) for x in vocab_live]})",
    ]
    for method, result in results.items():
        window = (result.iteration_time * 0.4, result.iteration_time * 0.6)
        lines.append(f"\n[{method}] steady state:")
        lines.append(render_timeline(result, width=110, mode="type", time_range=window))
    record("fig16_vhalf_schedules", "\n".join(lines))
