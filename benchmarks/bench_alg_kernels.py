"""Algorithms 1/2 vs naïve — real NumPy kernel benchmarks (§4, Fig. 4–8).

These run the actual partitioned output-layer implementations on CPU
BLAS and time one full microbatch (all ranks, all barriers).  Beyond
the barrier-count claim, this shows the compute totals of the three
variants are comparable — the paper's point is that Algorithm 2 trades
a *small* compute overhead for one fewer barrier.
"""

import numpy as np
import pytest

from repro.vocab import (
    NaiveOutputLayer,
    OutputLayerAlg1,
    OutputLayerAlg2,
    VocabPartition,
)

N, H, V, P = 512, 256, 16384, 8


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(0)
    part = VocabPartition(V, P)
    x = rng.normal(size=(N, H))
    w = rng.normal(size=(V, H))
    labels = rng.integers(0, V, size=N)
    return part, x, w, labels


@pytest.mark.parametrize(
    "impl,barriers",
    [(NaiveOutputLayer, 3), (OutputLayerAlg1, 2), (OutputLayerAlg2, 1)],
    ids=["naive", "alg1", "alg2"],
)
def test_output_layer_microbatch(benchmark, case, impl, barriers):
    part, x, w, labels = case
    layer = impl.from_full_weight(part, w)
    result = benchmark(lambda: layer.run(x, labels))
    assert result.num_barriers == barriers
    assert np.all(np.isfinite(result.losses))


def test_kernel_results_identical(benchmark, case, record):
    part, x, w, labels = case
    results = benchmark.pedantic(
        lambda: {
            impl.__name__: impl.from_full_weight(part, w).run(x, labels)
            for impl in (NaiveOutputLayer, OutputLayerAlg1, OutputLayerAlg2)
        },
        rounds=1,
        iterations=1,
    )
    base = results["NaiveOutputLayer"]
    lines = ["Output-layer kernels on CPU (n=%d, h=%d, V=%d, p=%d)" % (N, H, V, P)]
    for name, res in results.items():
        max_dloss = float(np.max(np.abs(res.losses - base.losses)))
        max_dgx = float(np.max(np.abs(res.grad_input - base.grad_input)))
        lines.append(
            f"  {name:22s} barriers={res.num_barriers}  "
            f"max|Δloss|={max_dloss:.2e}  max|Δ∇X|={max_dgx:.2e}"
        )
        assert max_dloss < 1e-10 and max_dgx < 1e-10
    record("alg_kernels_equivalence", "\n".join(lines))
