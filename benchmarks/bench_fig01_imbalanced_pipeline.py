"""Figure 1 — repeating bubble pattern of the imbalanced 1F1B pipeline.

Regenerates the paper's opening figure: with the output layer on the
last stage, every other device idles once per microbatch.  The bench
times the discrete-event executor on the baseline schedule and records
an ASCII timeline plus the per-device bubble fractions.
"""

from repro.config import ModelConfig, ParallelConfig
from repro.harness.experiments import build_schedule
from repro.sim import RuntimeModel, SimulationSetup, execute_schedule, render_timeline

from conftest import bench_microbatches


def _setup(vocab=256 * 1024):
    model = ModelConfig(
        num_layers=16,
        hidden_size=2048,
        num_attention_heads=16,
        seq_length=2048,
        vocab_size=vocab,
    )
    parallel = ParallelConfig(
        pipeline_size=4, num_microbatches=bench_microbatches(32)
    )
    return SimulationSetup(model, parallel)


def test_fig01_imbalanced_pipeline(benchmark, record):
    setup = _setup()
    schedule = build_schedule("baseline", setup)
    runtime = RuntimeModel(setup, schedule)
    result = benchmark.pedantic(
        lambda: execute_schedule(schedule, runtime), rounds=3, iterations=1
    )
    bubbles = [round(result.bubble_fraction(d), 3) for d in range(4)]
    # The last device (output layer) is the bottleneck; the others idle.
    assert result.bubble_fraction(3) < min(bubbles[:3])
    assert max(bubbles[:3]) > 0.3
    window = (result.iteration_time * 0.4, result.iteration_time * 0.6)
    lines = [
        "Figure 1 — imbalanced 1F1B (4 devices, 256k vocabulary, steady state)",
        render_timeline(result, width=110, mode="microbatch", time_range=window),
        f"per-device bubble fractions: {bubbles}",
    ]
    record("fig01_imbalanced_pipeline", "\n".join(lines))


def test_fig01_balanced_counterpart(benchmark, record):
    """Same model under Vocab-2: the repeating bubbles disappear."""
    setup = _setup()
    schedule = build_schedule("vocab-2", setup)
    runtime = RuntimeModel(setup, schedule)
    result = benchmark.pedantic(
        lambda: execute_schedule(schedule, runtime), rounds=3, iterations=1
    )
    bubbles = [round(result.bubble_fraction(d), 3) for d in range(4)]
    assert max(bubbles) < 0.25
    window = (result.iteration_time * 0.4, result.iteration_time * 0.6)
    record(
        "fig01_vocab2_counterpart",
        "\n".join(
            [
                "Vocab-2 on the same model — balanced steady state",
                render_timeline(result, width=110, mode="type", time_range=window),
                f"per-device bubble fractions: {bubbles}",
            ]
        ),
    )
