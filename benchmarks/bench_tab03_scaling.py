"""Table 3 — scaling factor of partitioned vocabulary layers.

Two parts: the analytic model's scaling factors against the paper's
measured table, and a *real CPU measurement* of the same effect — the
per-device S-pass wall time at growing shard counts, timed on NumPy
BLAS, showing the same sub-linear trend.
"""

import time

import numpy as np

from repro.harness.runner import run_table3
from repro.vocab import OutputLayerAlg1, VocabPartition


def test_tab03_model_scaling(benchmark, record):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    record("tab03_scaling_factors", result.render())
    for seq, layer, ours, paper in result.rows:
        # Output rows decline with GPU count, inputs are far below.
        if layer.startswith("output"):
            assert ours[0] > ours[1] > ours[2]
            assert all(0.55 < f < 1.0 for f in ours)
        else:
            assert all(f < 0.5 for f in ours)
    by_key = {(seq, layer): ours for seq, layer, ours, _ in result.rows}
    # Vocab-2 trails Vocab-1 (Algorithm 2's extra compute, §6.5).
    for seq in (2048, 4096):
        v1 = by_key[(seq, "output-vocab-1")]
        v2 = by_key[(seq, "output-vocab-2")]
        assert all(a < b for a, b in zip(v2, v1))


def test_tab03_cpu_measured_scaling(benchmark, record):
    """Time the real Algorithm-1 S pass per device as p grows on CPU.

    Documentation measurement, not a reproduction target: CPU BLAS at
    these sizes often scales *super*-linearly when partitioned (the
    shard fits cache), the opposite of the A100 kernel-efficiency loss
    Table 3 measures.  The analytic factors in
    ``test_tab03_model_scaling`` carry the Table 3 comparison; this
    bench records the CPU behaviour for contrast and sanity-checks the
    partitioned code path end to end.
    """
    n, h, v = 256, 128, 8192
    rng = np.random.default_rng(1)
    x = rng.normal(size=(n, h))
    w = rng.normal(size=(v, h))
    labels = rng.integers(0, v, size=n)

    def measure(p: int) -> float:
        part = VocabPartition(v, p)
        layer = OutputLayerAlg1.from_full_weight(part, w)
        state = layer.begin(x, labels)
        start = time.perf_counter()
        layer.pass_S(state, 0)
        return time.perf_counter() - start

    def sweep():
        # Warm the BLAS threads once.
        measure(1)
        return {p: min(measure(p) for _ in range(5)) for p in (1, 2, 4, 8)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    factors = {p: times[1] / (p * times[p]) for p in (2, 4, 8)}
    lines = [
        "CPU-measured S-pass scaling vs linear (NumPy BLAS, n=256 h=128 V=8192)",
        "(CPU caches make small shards *faster* than linear — unlike the",
        " A100 behaviour of Table 3, which the analytic model reproduces)",
    ]
    for p, f in factors.items():
        lines.append(f"  p={p}: scaling factor {100 * f:.1f}%")
    record("tab03_cpu_measured", "\n".join(lines))
    assert all(0.2 < f < 6.0 for f in factors.values())
