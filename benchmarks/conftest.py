"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
records the rendered comparison (simulated vs paper) under
``benchmarks/results/<name>.txt`` — pytest captures stdout, so the
files are the artifact; they are also printed for ``-s`` runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Callable writing a named experiment artifact to disk (and stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _record


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2025)


def bench_microbatches(default: int = 128) -> int:
    """Microbatch count for schedule benches (REPRO_BENCH_MICROBATCHES)."""
    return int(os.environ.get("REPRO_BENCH_MICROBATCHES", default))
