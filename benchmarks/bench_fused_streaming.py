"""§7 future work — fused streaming cross-entropy (FlashAttention-style).

The paper's conclusion points at fusing Algorithm 2's forward/backward
to avoid materializing the softmax ("which can be huge in long-context
large-vocabulary settings").  This bench runs our NumPy implementation
of that kernel at several block sizes: identical results, transient
memory bounded by the block, throughput within a small factor of the
unfused Algorithm 2 (the matmuls dominate; blocking costs only the
recompute of logits in the ∇W pass).
"""

import numpy as np
import pytest

from repro.vocab import FusedOutputLayer, OutputLayerAlg2, VocabPartition

N, H, V, P = 256, 128, 16384, 4


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(3)
    part = VocabPartition(V, P)
    return (
        part,
        rng.normal(size=(N, H)),
        rng.normal(size=(V, H)),
        rng.integers(0, V, size=N),
    )


@pytest.mark.parametrize("block", [256, 1024, 4096], ids=lambda b: f"block{b}")
def test_fused_streaming_microbatch(benchmark, case, block):
    part, x, w, labels = case
    layer = FusedOutputLayer.from_full_weight(part, w, block_size=block)
    result = benchmark(lambda: layer.run(x, labels))
    assert result.num_barriers == 1
    assert layer.max_block_columns <= block


def test_fused_unfused_agreement(benchmark, case, record):
    part, x, w, labels = case
    fused = FusedOutputLayer.from_full_weight(part, w, block_size=512)
    unfused = OutputLayerAlg2.from_full_weight(part, w)

    def both():
        return fused.run(x, labels), unfused.run(x, labels)

    fused_result, unfused_result = benchmark.pedantic(both, rounds=1, iterations=1)
    dloss = float(np.max(np.abs(fused_result.losses - unfused_result.losses)))
    dgx = float(
        np.max(np.abs(fused_result.grad_input - unfused_result.grad_input))
    )
    shard_elems = N * part.shard_size
    block_elems = N * 512
    record(
        "fused_streaming",
        "\n".join(
            [
                "Fused streaming CE (paper §7 future work) vs Algorithm 2",
                f"  n={N} h={H} V={V} p={P}, block=512",
                f"  max|Δloss|={dloss:.2e}  max|Δ∇X|={dgx:.2e}",
                f"  transient softmax footprint: {block_elems} elements/rank "
                f"vs {shard_elems} unfused ({shard_elems / block_elems:.0f}× smaller)",
            ]
        ),
    )
    assert dloss < 1e-10 and dgx < 1e-10
