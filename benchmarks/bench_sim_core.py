"""Simulator-core microbenchmark: compiled replay vs reference rebuild.

For the paper's Table 5 (8-GPU 1F1B Vocab-1) and Table 6 (16-GPU
V-Half Vocab-1) panels, times one in-order execution three ways —
reference executor (DAG rebuilt from dicts every call), a fresh
compile + execute, and a replay of the precompiled graph (the planner
loop's steady state) — and records the resulting speedups.  The
equivalence of results between the engines is asserted here as well,
so the artifact always describes matching simulations.

The committed perf trajectory lives in ``BENCH_sim.json`` (see
``tools/bench_trajectory.py`` and ``docs/performance.md``); this
benchmark is the interactive, pytest-run view of the same numbers.
"""

import time

import pytest

from repro.harness.settings import model_for_1f1b, model_for_vhalf, parallel_for
from repro.sim import RuntimeModel, SimulationSetup, compile_schedule
from repro.sim.reference_executor import (
    reference_execute_schedule,
    reference_execute_schedule_dataflow,
)
from repro.harness.experiments import generate_method_schedule

from conftest import bench_microbatches

PANELS = [
    ("tab5", 8, "vocab-1", model_for_1f1b),
    ("tab6", 16, "vhalf-vocab-1", model_for_vhalf),
]


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("tag,gpus,method,model_for", PANELS,
                         ids=[p[0] for p in PANELS])
def test_in_order_execution_speedup(benchmark, record, tag, gpus, method,
                                    model_for):
    model = model_for(gpus, 2048, 256 * 1024)
    parallel = parallel_for(gpus, num_microbatches=bench_microbatches())
    setup = SimulationSetup(model, parallel)
    schedule = generate_method_schedule(method, setup)
    runtime = RuntimeModel(setup, schedule)
    graph = compile_schedule(schedule, runtime)

    compiled = benchmark.pedantic(graph.replay, rounds=3, iterations=1)
    reference = reference_execute_schedule(schedule, runtime)
    assert compiled.pass_times == reference.pass_times
    assert compiled.iteration_time == reference.iteration_time

    t_reference = _best_of(lambda: reference_execute_schedule(schedule, runtime))
    t_fresh = _best_of(lambda: compile_schedule(schedule, runtime).execute())
    t_replay = _best_of(graph.replay)
    record(
        f"sim_core_{tag}_{gpus}gpu_inorder",
        "\n".join(
            [
                f"in-order execution, {method}, {gpus} GPUs, "
                f"m={parallel.num_microbatches}, vocab 256k",
                f"reference executor : {t_reference * 1e3:9.2f} ms",
                f"compile + execute  : {t_fresh * 1e3:9.2f} ms "
                f"({t_reference / t_fresh:5.1f}x)",
                f"compiled replay    : {t_replay * 1e3:9.2f} ms "
                f"({t_reference / t_replay:5.1f}x)",
            ]
        ),
    )


@pytest.mark.parametrize("tag,gpus,method,model_for", PANELS,
                         ids=[p[0] for p in PANELS])
def test_dataflow_execution_speedup(benchmark, record, tag, gpus, method,
                                    model_for):
    model = model_for(gpus, 2048, 256 * 1024)
    parallel = parallel_for(gpus, num_microbatches=bench_microbatches())
    setup = SimulationSetup(model, parallel)
    schedule = generate_method_schedule(method, setup)
    runtime = RuntimeModel(setup, schedule)
    graph = compile_schedule(schedule, runtime)
    mode = "zero-bubble" if schedule.has_weight_passes else "strict"

    compiled = benchmark.pedantic(
        lambda: graph.execute_dataflow(lookahead=64, mode=mode),
        rounds=3,
        iterations=1,
    )
    reference = reference_execute_schedule_dataflow(
        schedule, runtime, lookahead=64, mode=mode
    )
    assert compiled.pass_times == reference.pass_times

    t_reference = _best_of(
        lambda: reference_execute_schedule_dataflow(
            schedule, runtime, lookahead=64, mode=mode
        )
    )
    t_compiled = _best_of(lambda: graph.execute_dataflow(lookahead=64, mode=mode))
    record(
        f"sim_core_{tag}_{gpus}gpu_dataflow",
        "\n".join(
            [
                f"dataflow execution ({mode}), {method}, {gpus} GPUs, "
                f"m={parallel.num_microbatches}, vocab 256k",
                f"reference executor : {t_reference * 1e3:9.2f} ms",
                f"compiled graph     : {t_compiled * 1e3:9.2f} ms "
                f"({t_reference / t_compiled:5.1f}x)",
            ]
        ),
    )
