"""Planner validation — top choice vs brute-force simulation.

For the paper's Table 5 and Table 6 experiment panels, runs the
schedule planner (analytic pricing + top-k simulation) and a
brute-force sweep simulating *every* family, and records both
rankings.  Shape assertions encode the acceptance criterion: the
planner's top choice must be the simulator-measured fastest schedule,
and it must be a vocabulary-parallel method at the large vocabulary.
"""

import pytest

from repro.harness import model_for_1f1b, model_for_vhalf, run_method
from repro.harness.settings import (
    ONE_F_ONE_B_METHODS,
    VHALF_METHODS,
    parallel_for,
)
from repro.api import PlanCache, PlannerConstraints, plan

from conftest import bench_microbatches

PANELS = [
    ("tab5", 8, ONE_F_ONE_B_METHODS, model_for_1f1b),
    ("tab6", 16, VHALF_METHODS, model_for_vhalf),
]


@pytest.mark.parametrize("tag,gpus,methods,model_for", PANELS,
                         ids=[p[0] for p in PANELS])
def test_planner_matches_brute_force(benchmark, record, tag, gpus, methods,
                                     model_for):
    vocab = 256 * 1024
    model = model_for(gpus, 2048, vocab)
    parallel = parallel_for(gpus, num_microbatches=bench_microbatches())

    plans = benchmark.pedantic(
        lambda: plan(
            model,
            parallel,
            PlannerConstraints(methods=methods),
            cache=PlanCache(),
        ),
        rounds=1,
        iterations=1,
    )
    record(f"planner_{tag}_{gpus}gpu_256k", plans.render())

    brute = {m: run_method(m, model, parallel) for m in methods}
    fastest = min(
        (m for m in brute if not brute[m].oom),
        key=lambda m: brute[m].iteration_time,
    )
    assert plans.best.method == fastest
    assert plans.best.source == "sim"
    assert plans.best.iteration_time == pytest.approx(
        brute[fastest].iteration_time
    )
    # The paper's claim at 256k: vocabulary parallelism wins the panel.
    assert "vocab" in plans.best.method
