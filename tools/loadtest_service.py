#!/usr/bin/env python
"""Closed-loop load generator for the planning service.

Drives a live ``repro-experiments serve`` process with a configurable
mix of plan / sweep / scenario / what-if queries from N concurrent
closed-loop workers (each worker issues its next request as soon as the previous
one returns), plus a synchronized *duplicate burst* that exercises
request coalescing.  Records throughput and p50/p95/p99 latency per
request class and validates the service's behavioural contract:

* ``/healthz`` answers OK before and after the load;
* every response is 200 with a well-formed body;
* the coalesce counter is positive after the duplicate burst, and the
  burst's responses are bit-identical;
* the server shuts down cleanly on ``POST /shutdown`` and its exit
  code is propagated — ``repro-experiments serve`` exits non-zero when
  worker processes leak past pool shutdown, and so does this tool.

Usage (CI's service-smoke job runs the first form)::

    PYTHONPATH=src python tools/loadtest_service.py --quick
    PYTHONPATH=src python tools/loadtest_service.py --concurrency 16 --requests 40
    PYTHONPATH=src python tools/loadtest_service.py --url http://127.0.0.1:8181

Without ``--url`` the tool spawns its own server subprocess (an
ephemeral port, ``--executor`` selects its pool type).  The per-class
latency summary can be written with ``--json``; the committed
``BENCH_service.json`` trajectory numbers come from
``tools/bench_trajectory.py --service``, which reuses this module's
client primitives.
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import select
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Client primitives (also used by tools/bench_trajectory.py --service)
# ---------------------------------------------------------------------------


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float = 300.0,
) -> tuple[int, dict]:
    """One HTTP request → (status, decoded JSON body)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def percentile(latencies: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a latency sample."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def summarize(latencies: list[float], wall_s: float) -> dict:
    """Throughput + latency percentiles for one request class."""
    return {
        "requests": len(latencies),
        "wall_s": wall_s,
        "throughput_rps": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "mean_s": sum(latencies) / len(latencies) if latencies else 0.0,
        "p50_s": percentile(latencies, 50.0),
        "p95_s": percentile(latencies, 95.0),
        "p99_s": percentile(latencies, 99.0),
    }


class ServerHandle:
    """A spawned ``repro-experiments serve`` subprocess."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    def shutdown(self, timeout: float = 60.0) -> int:
        """Graceful shutdown; returns the server's exit code."""
        try:
            request_json(self.host, self.port, "POST", "/shutdown", timeout=30.0)
        except OSError:
            pass  # already gone
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=10.0)
            return -1


def spawn_server(
    executor: str = "process",
    workers: int | None = None,
    cache_dir: str | None = None,
    lru_size: int = 256,
    startup_timeout: float = 60.0,
    faults: str | None = None,
    extra_args: list[str] | None = None,
) -> ServerHandle:
    """Start a server subprocess on an ephemeral port and wait for it.

    ``faults`` sets (or, when ``None``, strips) ``REPRO_FAULTS`` in the
    child's environment — the env route, not ``--faults``, so pool
    *worker* processes inherit the spec and cache-write fault sites
    fire inside them too.
    """
    import os

    command = [
        sys.executable, "-m", "repro.harness.cli", "serve",
        "--port", "0", "--executor", executor,
    ]
    if workers is not None:
        command += ["--workers", str(workers)]
    if cache_dir is not None:
        command += ["--cache-dir", cache_dir]
    command += ["--lru-size", str(lru_size)]
    command += extra_args or []
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True, env=env, cwd=str(REPO)
    )
    deadline = time.monotonic() + startup_timeout
    pattern = re.compile(r"serving on http://([^:]+):(\d+)")
    while True:
        # select() before readline(): a subprocess that hangs before
        # announcing its port (with stdout still open) must fail this
        # call after startup_timeout, not block CI forever.
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        readable, _, _ = select.select([process.stdout], [], [], remaining)
        if not readable:
            break
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited during startup (code {process.poll()})"
            )
        match = pattern.search(line)
        if match:
            return ServerHandle(process, match.group(1), int(match.group(2)))
    process.kill()
    raise RuntimeError(f"server did not announce a port in {startup_timeout}s")


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def build_mix(args: argparse.Namespace) -> list[tuple[str, str, dict]]:
    """The deterministic request classes: (class name, path, payload).

    ``hot`` repeats one configuration (LRU-hit steady state), ``cold``
    walks distinct memory budgets over one schedule structure (planner
    aux caches do the heavy lifting, every digest is new), ``sweep``
    and ``scenarios`` exercise those two endpoints at a size that
    keeps the closed loop interactive, and ``whatif`` walks distinct
    slowdown factors so every delta query is a fresh digest answered
    by the resident compiled graph.
    """
    base = {
        "devices": args.devices,
        "vocab_size": args.vocab_size,
        "microbatches": args.microbatches,
        "simulate_top_k": args.top_k,
    }
    classes = [("plan_hot", "/v1/plan", dict(base))]
    classes.append(
        (
            "plan_cold",
            "/v1/plan",
            dict(base, memory_budget_gib="COLD"),  # placeholder per request
        )
    )
    classes.append(
        (
            "sweep",
            "/v1/sweep",
            {
                "devices": [args.devices],
                "vocab_sizes": [args.vocab_size],
                "microbatches": [args.microbatches],
                "memory_budgets_gib": [40.0, 80.0],
                "simulate_top_k": args.top_k,
            },
        )
    )
    classes.append(
        (
            "scenarios",
            "/v1/scenarios",
            {
                "scenario": "slow-node",
                "method": "vocab-1",
                "devices": args.devices,
                "vocab_size": args.vocab_size,
                "microbatches": args.microbatches,
                "samples": args.samples,
            },
        )
    )
    classes.append(
        (
            "whatif",
            "/v1/whatif",
            {
                "devices": args.devices,
                "vocab_size": args.vocab_size,
                "microbatches": args.microbatches,
                "method": "vocab-1",
                "device": -1,
                "factor": "COLD",  # placeholder per request
            },
        )
    )
    return classes


def run_closed_loop(
    host: str,
    port: int,
    classes: list[tuple[str, str, dict]],
    concurrency: int,
    requests_per_worker: int,
    hot_ratio: float,
) -> tuple[dict[str, list[float]], float, list[str]]:
    """N workers, each issuing its next request when the last returns.

    The request stream is deterministic per worker: a ``hot_ratio``
    fraction of slots replay the hot-plan class, the rest round-robin
    over the remaining classes.  Cold plan slots draw a
    worker-and-slot-unique memory budget so every one is a fresh
    digest.
    """
    latencies: dict[str, list[float]] = {name: [] for name, _, _ in classes}
    errors: list[str] = []
    lock = threading.Lock()
    others = [c for c in classes if c[0] != "plan_hot"]

    def schedule(worker: int, slot: int) -> tuple[str, str, dict]:
        # Bresenham-style interleave: a hot_ratio fraction of slots is
        # hot with hot/cold evenly mixed even for tiny slot counts.
        if int((slot + 1) * hot_ratio) > int(slot * hot_ratio):
            return classes[0]
        name, path, payload = others[(worker + slot) % len(others)]
        if name == "plan_cold":
            payload = dict(payload)
            payload["memory_budget_gib"] = (
                30.0 + (worker * requests_per_worker + slot) * 0.125
            )
        elif name == "whatif":
            payload = dict(payload)
            payload["factor"] = (
                1.05 + (worker * requests_per_worker + slot) * 0.01
            )
        return name, path, payload

    def run_worker(worker: int) -> None:
        for slot in range(requests_per_worker):
            name, path, payload = schedule(worker, slot)
            start = time.perf_counter()
            try:
                status, body = request_json(host, port, "POST", path, payload)
            except OSError as error:
                with lock:
                    errors.append(f"{name}: transport error {error}")
                continue
            elapsed = time.perf_counter() - start
            with lock:
                if status != 200:
                    errors.append(
                        f"{name}: HTTP {status}: {body.get('error', body)}"
                    )
                else:
                    latencies[name].append(elapsed)

    threads = [
        threading.Thread(target=run_worker, args=(w,)) for w in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, time.perf_counter() - start, errors


def run_duplicate_burst(
    host: str, port: int, payload: dict, duplicates: int
) -> tuple[list[float], set[str], list[str]]:
    """Fire N identical requests through a barrier (the coalesce probe).

    The payload must be a digest the service has not seen (otherwise
    the LRU answers and nothing coalesces).  Returns latencies, the
    set of distinct response bodies (must be exactly one) and errors.
    """
    barrier = threading.Barrier(duplicates)
    latencies: list[float] = []
    bodies: set[str] = set()
    errors: list[str] = []
    lock = threading.Lock()

    def run_one() -> None:
        barrier.wait()
        start = time.perf_counter()
        try:
            status, body = request_json(host, port, "POST", "/v1/plan", payload)
        except OSError as error:
            with lock:
                errors.append(f"burst: transport error {error}")
            return
        elapsed = time.perf_counter() - start
        with lock:
            if status != 200:
                errors.append(f"burst: HTTP {status}: {body.get('error', body)}")
            else:
                latencies.append(elapsed)
                bodies.add(json.dumps(body["result"], sort_keys=True))

    threads = [threading.Thread(target=run_one) for _ in range(duplicates)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, bodies, errors


# ---------------------------------------------------------------------------
# Chaos mode
# ---------------------------------------------------------------------------

#: The fixed fault schedule of ``--chaos`` (CI's chaos-smoke job).
#: Seeded and counter-based, so the same spec yields the same fault
#: schedule every run: the 2nd pool submission crashes a worker (the
#: breaker must trip, then recover), ~90% of cache writes are
#: corrupted and ~40% torn (every disk read-back must checksum,
#: quarantine and recompute), a bounded number of responses are cut
#: mid-body (clients must retry), and some computations run slow.
CHAOS_SPEC = (
    "kill-pool-worker:rate=1,after=1,limit=1;"
    "slow-worker:rate=0.25,seed=5,delay_ms=100;"
    "corrupt-cache-entry:rate=0.9,seed=7;"
    "torn-cache-write:rate=0.4,seed=11;"
    "drop-connection-mid-response:rate=0.25,seed=3,limit=6"
)

#: Response statuses the chaos contract allows.  Anything else — any
#: 500, any unexplained status — is a violation.
CHAOS_ALLOWED = (200, 429, 503, 504)

#: The fixed fault schedule of ``--chaos --fleet N`` (CI's
#: fleet-chaos-smoke job).  ``kill-shard`` SIGKILLs one shard at the
#: 4th supervisor monitor tick — mid-replay — so the router must fail
#: its keys over while the supervisor restarts it; ``slow-shard``
#: delays ~30% of primary forwards by far more than the hedge ceiling,
#: so hedged duplicates must fire and win.
FLEET_CHAOS_SPEC = (
    "kill-shard:rate=1,after=3,limit=1;"
    "slow-shard:rate=0.4,seed=0,delay_ms=900"
)

#: Response-identity contract: every ``/v1/*`` success is the uniform
#: envelope; identity is ``meta.digest`` plus the ``result`` object.
#: ``meta.timings`` varies per request, so raw bytes are never compared.


def chaos_requests(args: argparse.Namespace) -> list[tuple[str, dict]]:
    """The deterministic chaos request list: (path, payload) pairs.

    Several distinct plan digests (more than the chaos server's tiny
    LRU holds, so repeats *must* probe the possibly-corrupt disk
    tier), a couple of what-ifs, and one scenario query.
    """
    plans = 4 if args.quick else 6
    base = {
        "devices": args.devices,
        "vocab_size": args.vocab_size,
        "simulate_top_k": args.top_k,
    }
    requests: list[tuple[str, dict]] = [
        ("/v1/plan", dict(base, microbatches=args.microbatches + i))
        for i in range(plans)
    ]
    requests += [
        (
            "/v1/whatif",
            {
                "devices": args.devices,
                "vocab_size": args.vocab_size,
                "microbatches": args.microbatches,
                "method": "vocab-1",
                "device": -1,
                "factor": factor,
            },
        )
        for factor in (1.1, 1.2)
    ]
    requests.append(
        (
            "/v1/scenarios",
            {
                "scenario": "slow-node",
                "method": "vocab-1",
                "devices": args.devices,
                "vocab_size": args.vocab_size,
                "microbatches": args.microbatches,
                "samples": args.samples,
            },
        )
    )
    return requests


def fetch_with_retries(
    host: str,
    port: int,
    path: str,
    payload: dict,
    problems: list[str],
    attempts: int = 6,
) -> dict | None:
    """One request under chaos: retry torn connections and shed/timeout.

    Returns the 200 body, or ``None`` after appending the violation
    (an unexpected status, or no success within ``attempts``).
    Dropped connections surface as transport/parse errors; 429 honours
    ``retry_after_s``; 503/504 back off briefly.
    """
    last = "no attempt"
    for _ in range(attempts):
        try:
            status, body = request_json(
                host, port, "POST", path, payload, timeout=120.0
            )
        except (OSError, http.client.HTTPException,
                json.JSONDecodeError) as error:
            last = f"torn response ({type(error).__name__})"
            time.sleep(0.1)
            continue
        if status == 200:
            return body
        if status == 429:
            last = "shed (429)"
            retry_after = body.get("error", {}).get("retry_after_s", 1.0)
            time.sleep(min(float(retry_after), 1.0))
            continue
        if status in (503, 504):
            last = f"HTTP {status}"
            time.sleep(0.3)
            continue
        problems.append(
            f"chaos: {path}: unexpected HTTP {status}: "
            f"{body.get('error', body)}"
        )
        return None
    problems.append(
        f"chaos: {path}: no 200 after {attempts} attempts (last: {last})"
    )
    return None


def run_chaos(args: argparse.Namespace) -> int:
    """The ``--chaos`` entry point: oracle run, then run under faults.

    Asserts the resilience contract end to end: under injected worker
    kills, cache corruption, torn writes and dropped connections, every
    completed response is bit-identical to the fault-free oracle run,
    only deliberate 429/503/504 appear, corrupt cache entries are
    quarantined, and the circuit breaker is observed tripping and then
    recovering (process pool restored from thread degradation).
    """
    import tempfile

    problems: list[str] = []
    requests = chaos_requests(args)
    # A digest the main list never computes: the final breaker probe
    # must reach the pool (a disk hit would bypass it).
    probe = ("/v1/plan", {
        "devices": args.devices,
        "vocab_size": args.vocab_size,
        "simulate_top_k": args.top_k,
        "microbatches": args.microbatches + 50,
    })
    expected: dict[str, tuple[str, str]] = {}

    with tempfile.TemporaryDirectory() as oracle_dir, \
            tempfile.TemporaryDirectory() as chaos_dir:
        print("chaos: oracle run (fault-free) ...", flush=True)
        oracle = spawn_server(
            executor="process", workers=args.workers, cache_dir=oracle_dir
        )
        try:
            for path, payload in requests + [probe]:
                body = fetch_with_retries(
                    oracle.host, oracle.port, path, payload, problems
                )
                if body is None:
                    problems.append("chaos: oracle run failed; aborting")
                    return _report_chaos(problems)
                key = json.dumps([path, payload], sort_keys=True)
                expected[key] = (
                    body["meta"]["digest"],
                    json.dumps(body["result"], sort_keys=True),
                )
        finally:
            code = oracle.shutdown()
            if code != 0:
                problems.append(f"chaos: oracle server exited {code}")

        print(
            f"chaos: fault run (spec: {CHAOS_SPEC}) ...", flush=True
        )
        server = spawn_server(
            executor="process",
            workers=args.workers,
            cache_dir=chaos_dir,
            lru_size=2,  # tiny hot tier: repeats must read the disk tier
            faults=CHAOS_SPEC,
            extra_args=["--breaker-backoff", "0.2"],
        )
        matched = 0
        try:
            # Two passes: pass 1 computes (writes corrupt/torn disk
            # entries, crashes a worker), pass 2 re-requests the same
            # digests through the tiny LRU so the disk tier's
            # checksum/quarantine/recompute path runs for real.
            for sweep in range(2):
                for path, payload in requests:
                    body = fetch_with_retries(
                        server.host, server.port, path, payload, problems
                    )
                    if body is None:
                        continue
                    key = json.dumps([path, payload], sort_keys=True)
                    digest, rendered = expected[key]
                    if body["meta"]["digest"] != digest:
                        problems.append(
                            f"chaos: {path}: digest diverged from oracle"
                        )
                    elif (
                        json.dumps(body["result"], sort_keys=True)
                        != rendered
                    ):
                        problems.append(
                            f"chaos: {path}: response bytes diverged from "
                            f"the fault-free oracle (tier {body['meta']['cache']})"
                        )
                    else:
                        matched += 1
            # Past the breaker backoff, force one computation that can
            # only be answered by the pool: the resurrection probe.
            time.sleep(0.5)
            body = fetch_with_retries(
                server.host, server.port, probe[0], probe[1], problems
            )
            if body is not None:
                digest, rendered = expected[
                    json.dumps([probe[0], probe[1]], sort_keys=True)
                ]
                if (
                    body["meta"]["digest"] != digest
                    or json.dumps(body["result"], sort_keys=True) != rendered
                ):
                    problems.append("chaos: probe response diverged")
                else:
                    matched += 1

            status, stats = request_json(
                server.host, server.port, "GET", "/stats"
            )
            if status != 200:
                problems.append(f"chaos: /stats: HTTP {status}")
                stats = {}
            resilience = stats.get("resilience", {})
            breaker = resilience.get("breaker", {})
            fires = resilience.get("faults", {})
            quarantined = stats.get("disk", {}).get("quarantined", 0)
            print(
                f"chaos: matched={matched} "
                f"breaker={breaker.get('state')} "
                f"trips={breaker.get('trips')} "
                f"recoveries={breaker.get('recoveries')} "
                f"quarantined={quarantined} "
                f"dropped={resilience.get('dropped_connections')} "
                f"executor={stats.get('executor', {}).get('kind')}"
            )
            if breaker.get("trips", 0) < 1:
                problems.append(
                    "chaos: breaker never tripped (kill-pool-worker fired "
                    f"{fires.get('kill-pool-worker', {}).get('fires')} times)"
                )
            if breaker.get("recoveries", 0) < 1:
                problems.append(
                    "chaos: breaker never recovered (state "
                    f"{breaker.get('state')!r}, "
                    f"{breaker.get('recovery_attempts')} attempts)"
                )
            if stats.get("executor", {}).get("kind") != "process":
                problems.append(
                    "chaos: process pool not restored after recovery "
                    f"(executor {stats.get('executor')})"
                )
            if quarantined < 1:
                problems.append(
                    "chaos: no corrupt cache entry was quarantined (disk "
                    "tier never caught the injected corruption)"
                )
            if resilience.get("dropped_connections", 0) < 1:
                problems.append(
                    "chaos: drop-connection-mid-response never fired"
                )
        finally:
            code = server.shutdown()
            if code != 0:
                problems.append(
                    f"chaos: server exited {code} (leaked workers or "
                    "unclean shutdown)"
                )
            else:
                print("chaos: server shut down cleanly (exit 0)")

    return _report_chaos(problems)


def run_chaos_fleet(args: argparse.Namespace) -> int:
    """The ``--chaos --fleet N`` entry point: chaos against a fleet.

    Replays the deterministic chaos request list against an N-shard
    fleet while ``kill-shard`` takes a shard down mid-run and
    ``slow-shard`` forces the hedging path, then asserts the fleet
    contract against a fault-free single-process oracle: every
    response is bit-identical to the oracle, no non-deliberate 5xx
    surfaces, at least one hedge fires and wins, the killed shard is
    restarted and re-admitted, and a final batch answers 200 first try
    (post-restart availability).
    """
    import tempfile

    problems: list[str] = []
    requests = chaos_requests(args)
    expected: dict[str, tuple[str, str]] = {}

    with tempfile.TemporaryDirectory() as oracle_dir, \
            tempfile.TemporaryDirectory() as fleet_dir:
        print("chaos: oracle run (fault-free, single process) ...", flush=True)
        oracle = spawn_server(
            executor="thread", workers=args.workers, cache_dir=oracle_dir
        )
        try:
            for path, payload in requests:
                body = fetch_with_retries(
                    oracle.host, oracle.port, path, payload, problems
                )
                if body is None:
                    problems.append("chaos: oracle run failed; aborting")
                    return _report_chaos(problems)
                key = json.dumps([path, payload], sort_keys=True)
                expected[key] = (
                    body["meta"]["digest"],
                    json.dumps(body["result"], sort_keys=True),
                )
        finally:
            code = oracle.shutdown()
            if code != 0:
                problems.append(f"chaos: oracle server exited {code}")

        print(
            f"chaos: fleet run ({args.fleet} shards, spec: "
            f"{FLEET_CHAOS_SPEC}) ...",
            flush=True,
        )
        fleet = spawn_server(
            executor="thread",
            workers=args.workers,
            cache_dir=fleet_dir,
            faults=FLEET_CHAOS_SPEC,
            extra_args=[
                "--fleet", str(args.fleet),
                "--probe-interval", "0.2",
                "--restart-backoff", "1.0",
                "--hedge-min-ms", "50",
                "--hedge-max-ms", "400",
            ],
        )
        matched = 0
        try:
            # Hold traffic until kill-shard has actually taken a shard
            # down (4th monitor tick), so the replay passes run through
            # the outage and the failover path is exercised for real.
            kill_deadline = time.monotonic() + 15.0
            killed = False
            while time.monotonic() < kill_deadline:
                try:
                    status, stats = request_json(
                        fleet.host, fleet.port, "GET", "/stats"
                    )
                except OSError:
                    status, stats = 0, {}
                fleet_shards = stats.get("fleet", {}).get("shards", {})
                if status == 200 and any(
                    s.get("state") != "up" or s.get("restarts", 0) >= 1
                    for s in fleet_shards.values()
                ):
                    killed = True
                    break
                time.sleep(0.1)
            if not killed:
                problems.append(
                    "chaos: kill-shard never took a shard down within 15s"
                )

            # Two replay passes: pass 1 overlaps the shard outage
            # (failover must cover it), pass 2 runs while and after the
            # supervisor restarts the victim.
            for _sweep in range(2):
                for path, payload in requests:
                    body = fetch_with_retries(
                        fleet.host, fleet.port, path, payload, problems
                    )
                    if body is None:
                        continue
                    key = json.dumps([path, payload], sort_keys=True)
                    digest, rendered = expected[key]
                    if body["meta"]["digest"] != digest:
                        problems.append(
                            f"chaos: {path}: digest diverged from oracle"
                        )
                    elif (
                        json.dumps(body["result"], sort_keys=True)
                        != rendered
                    ):
                        problems.append(
                            f"chaos: {path}: response bytes diverged from "
                            "the fault-free oracle"
                        )
                    else:
                        matched += 1

            # The killed shard must be restarted and re-admitted.
            deadline = time.monotonic() + 30.0
            shards: dict[str, dict] = {}
            while time.monotonic() < deadline:
                try:
                    status, stats = request_json(
                        fleet.host, fleet.port, "GET", "/stats"
                    )
                except OSError:
                    status, stats = 0, {}
                if status == 200:
                    shards = stats.get("fleet", {}).get("shards", {})
                    if shards and any(
                        s.get("restarts", 0) >= 1 for s in shards.values()
                    ) and all(
                        s.get("state") == "up" for s in shards.values()
                    ):
                        break
                time.sleep(0.25)
            restarted = [
                sid for sid, s in shards.items() if s.get("restarts", 0) >= 1
            ]
            if not restarted:
                problems.append(
                    "chaos: kill-shard fired but no shard was ever "
                    f"restarted (states: "
                    f"{ {sid: s.get('state') for sid, s in shards.items()} })"
                )
            if not shards or not all(
                s.get("state") == "up" for s in shards.values()
            ):
                problems.append(
                    "chaos: fleet never returned to full strength "
                    f"(states: "
                    f"{ {sid: s.get('state') for sid, s in shards.items()} })"
                )

            # Post-restart availability: 200 on the first try, no
            # retries, for the whole request list.
            unavailable = 0
            for path, payload in requests:
                try:
                    status, _body = request_json(
                        fleet.host, fleet.port, "POST", path, payload,
                        timeout=120.0,
                    )
                except OSError as error:
                    unavailable += 1
                    problems.append(
                        f"chaos: post-restart availability: {path}: "
                        f"transport error {error}"
                    )
                    continue
                if status != 200:
                    unavailable += 1
                    problems.append(
                        f"chaos: post-restart availability: {path}: "
                        f"HTTP {status} on first try"
                    )

            try:
                status, stats = request_json(
                    fleet.host, fleet.port, "GET", "/stats"
                )
            except OSError:
                status, stats = 0, {}
            if status != 200:
                problems.append(f"chaos: final /stats: HTTP {status}")
                stats = {}
            shards = stats.get("fleet", {}).get("shards", {})
            hedges = sum(s.get("hedges_fired", 0) for s in shards.values())
            wins = sum(s.get("hedge_wins", 0) for s in shards.values())
            failovers = sum(s.get("failovers", 0) for s in shards.values())
            restarts = sum(s.get("restarts", 0) for s in shards.values())
            print(
                f"chaos: matched={matched} restarts={restarts} "
                f"failovers={failovers} hedges={hedges} hedge_wins={wins} "
                f"router_errors={stats.get('errors')} "
                f"unrouted={stats.get('unrouted')} "
                f"unavailable={unavailable}"
            )
            if hedges < 1:
                problems.append(
                    "chaos: slow-shard was armed but no hedged request "
                    "ever fired"
                )
            if wins < 1:
                problems.append(
                    "chaos: hedges fired but none won — successors never "
                    "answered before the slowed primary"
                )
            if failovers < 1:
                problems.append(
                    "chaos: a shard died mid-run but no request was "
                    "failed over to its ring successor"
                )
            if stats.get("errors", 0):
                problems.append(
                    f"chaos: router counted {stats['errors']} errors "
                    "(non-deliberate 5xx responses)"
                )
            if stats.get("unrouted", 0):
                problems.append(
                    f"chaos: {stats['unrouted']} requests found no "
                    "routable shard"
                )
        finally:
            code = fleet.shutdown()
            if code != 0:
                problems.append(
                    f"chaos: fleet exited {code} (dirty shutdown: a shard "
                    "needed a force-kill)"
                )
            else:
                print("chaos: fleet shut down cleanly (exit 0)")

    return _report_chaos(problems)


def _report_chaos(problems: list[str]) -> int:
    if problems:
        print("\nchaos loadtest FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("chaos loadtest OK")
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def parse_url(url: str) -> tuple[str, int]:
    match = re.fullmatch(r"(?:https?://)?([^:/]+):(\d+)/?", url.strip())
    if not match:
        raise SystemExit(f"loadtest: cannot parse --url {url!r} (host:port)")
    return match.group(1), int(match.group(2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--url", default=None,
        help="target an already-running service (default: spawn one)",
    )
    parser.add_argument(
        "--executor", choices=["process", "thread"], default="process",
        help="pool type for the spawned server (ignored with --url)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=25,
        help="closed-loop requests per worker",
    )
    parser.add_argument(
        "--hot-ratio", type=float, default=0.6,
        help="fraction of slots replaying the hot plan config",
    )
    parser.add_argument(
        "--duplicates", type=int, default=8,
        help="size of the synchronized duplicate burst",
    )
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--vocab-size", default="32k")
    parser.add_argument("--microbatches", type=int, default=16)
    parser.add_argument("--top-k", type=int, default=1)
    parser.add_argument(
        "--samples", type=int, default=16,
        help="Monte Carlo samples of the scenario request class",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI profile: few workers/requests, assertions on",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="chaos mode: replay a deterministic request list against "
        "a fault-injected server (fixed seed) and assert the "
        "resilience contract vs a fault-free oracle run",
    )
    parser.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="spawn an N-shard fleet behind the consistent-hash router "
        "instead of a single process; with --chaos, asserts the fleet "
        "contract (failover, hedging, restart, availability) instead",
    )
    parser.add_argument(
        "--json", default=None, metavar="OUT",
        help="write the latency/throughput report as JSON",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.concurrency = min(args.concurrency, 6)
        args.requests = min(args.requests, 5)
        args.microbatches = min(args.microbatches, 8)
        args.samples = min(args.samples, 8)
    if args.chaos:
        if args.url is not None:
            raise SystemExit(
                "loadtest: --chaos spawns its own oracle and fault "
                "servers; it cannot target --url"
            )
        return run_chaos_fleet(args) if args.fleet else run_chaos(args)

    problems: list[str] = []
    server: ServerHandle | None = None
    if args.url is not None:
        host, port = parse_url(args.url)
    else:
        topology = (
            f"fleet of {args.fleet}" if args.fleet
            else f"executor={args.executor}"
        )
        print(f"spawning service ({topology}) ...", flush=True)
        server = spawn_server(
            executor=args.executor,
            workers=args.workers,
            cache_dir=args.cache_dir,
            extra_args=(
                ["--fleet", str(args.fleet)] if args.fleet else None
            ),
        )
        host, port = server.host, server.port
        print(f"spawned http://{host}:{port}", flush=True)

    exit_code = 0
    try:
        status, health = request_json(host, port, "GET", "/healthz")
        if status != 200 or health.get("status") not in ("ok", "degraded"):
            problems.append(f"/healthz before load: HTTP {status} {health}")
        else:
            detail = (
                f"{health['shards_up']} shards up"
                if "shards_up" in health
                else f"executor {health.get('executor')}"
            )
            print(f"healthz: {health['status']} ({detail})")

        classes = build_mix(args)
        latencies, wall_s, errors = run_closed_loop(
            host, port, classes, args.concurrency, args.requests,
            args.hot_ratio,
        )
        problems.extend(errors)

        # The coalesce probe: a never-seen digest, N synchronized
        # duplicates.  The distinct microbatch count keeps the digest
        # out of every class above.
        burst_payload = {
            "devices": args.devices,
            "vocab_size": args.vocab_size,
            "microbatches": args.microbatches + 1,
            "simulate_top_k": args.top_k,
        }
        burst, bodies, errors = run_duplicate_burst(
            host, port, burst_payload, args.duplicates
        )
        problems.extend(errors)
        if len(bodies) > 1:
            problems.append(
                f"duplicate burst returned {len(bodies)} distinct plans "
                "(expected bit-identical responses)"
            )

        status, stats = request_json(host, port, "GET", "/stats")
        if status != 200:
            problems.append(f"/stats: HTTP {status}")
            stats = {}
        coalesced = stats.get("coalesced", 0)
        if burst and coalesced < 1:
            problems.append(
                "coalesce counter is 0 after a synchronized duplicate burst"
            )
        status, health = request_json(host, port, "GET", "/healthz")
        if status != 200:
            problems.append(f"/healthz after load: HTTP {status}")

        total = sum(len(v) for v in latencies.values()) + len(burst)
        print(
            f"\n{total} requests over {wall_s:.2f}s closed-loop wall "
            f"({args.concurrency} workers x {args.requests}); "
            f"computed={stats.get('computed')} coalesced={coalesced} "
            f"lru_hits={stats.get('lru', {}).get('hits')}"
        )
        report = {"classes": {}, "stats": stats}
        for name, values in latencies.items():
            if not values:
                continue
            summary = summarize(values, wall_s)
            report["classes"][name] = summary
            print(
                f"  {name:12s} n={summary['requests']:4d}  "
                f"p50 {summary['p50_s'] * 1e3:8.1f} ms  "
                f"p95 {summary['p95_s'] * 1e3:8.1f} ms  "
                f"p99 {summary['p99_s'] * 1e3:8.1f} ms"
            )
        if burst:
            summary = summarize(burst, max(burst))
            report["classes"]["coalesced_burst"] = summary
            print(
                f"  {'burst':12s} n={summary['requests']:4d}  "
                f"p50 {summary['p50_s'] * 1e3:8.1f} ms  "
                f"p95 {summary['p95_s'] * 1e3:8.1f} ms  "
                f"p99 {summary['p99_s'] * 1e3:8.1f} ms"
            )
        if args.json:
            Path(args.json).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {args.json}")
    finally:
        if server is not None:
            code = server.shutdown()
            if code != 0:
                problems.append(
                    f"server exited with code {code} (leaked workers or "
                    "unclean shutdown)"
                )
            else:
                print("server shut down cleanly (exit 0)")

    if problems:
        print("\nloadtest FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        exit_code = 1
    else:
        print("loadtest OK")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
