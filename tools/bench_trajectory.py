#!/usr/bin/env python
"""Measure the simulator/planner perf trajectory and emit ``BENCH_sim.json``.

Times the hot paths of the reproduction on the paper's Table 5/6
config classes, comparing the frozen **reference** engine (the
pre-compiled-graph executor, ``REPRO_SIM_ENGINE=reference``) against
the **compiled** engine (:mod:`repro.sim.compiled`):

* ``execute_*`` — one in-order `execute_schedule` (reference rebuilds
  the DAG from dicts; compiled replays the precompiled graph, the
  steady state of every planner/sweep loop);
* ``dataflow_*`` — one work-conserving execution;
* ``plan_*`` — one end-to-end :func:`repro.planner.planner.plan` call
  (enumerate → price → simulate top-k → rank) with a cold cache;
* ``calibrated_plan_*`` — full verification (simulate *every* feasible
  candidate) vs the same search trust-gated by the committed
  ``a100-sim`` calibrated profile, which skips candidates its error
  bounds prove out; top-1 identity with full verification is asserted
  every run;
* ``execute_many_*`` — pricing one compiled structure under 16 runtime
  bindings: the "reference" side loops ``rebind().replay()`` per
  binding, the "compiled" side is one batched
  :meth:`~repro.sim.compiled.CompiledGraph.execute_many` pass;
* ``sweep_grid_*`` — an 8-point memory-budget grid sharing one
  schedule structure: the "reference" side plans each point with all
  process-wide caches cleared (the pre-structural-cache behaviour),
  the "compiled" side is one structure-grouped ``sweep()``;
* ``scenario_robustness_*`` — Monte Carlo robustness (K=256 seeded
  jitter samples of the ``slow-node`` cluster scenario): the
  "reference" side executes the perturbed bindings one at a time, the
  "compiled" side is one batched
  :meth:`~repro.sim.compiled.CompiledGraph.execute_many_summary` pass
  over the same matrices;
* ``incremental_whatif_*`` — one single-device what-if (the last
  device 1.25× slower): the "reference" side is the reference engine
  fully re-relaxing the perturbed binding from scratch, the "compiled"
  side answers from the resident checkpoint via the adaptive delta
  path (:meth:`~repro.sim.compiled.CompiledGraph.execute_delta_summary`);
  ``resweep_s``/``tail_s`` record the compiled full-resweep
  alternative and a transient (last-two-microbatch) variant whose
  narrow cone stays on the incremental walk;
* ``optimize_*`` — one fixed-seed, budget-bounded rewrite search
  (:func:`repro.optimize.optimize`: full-verify named-family baseline
  + 16 oracle evaluations, a ``/v1/optimize`` cache miss) on a cold
  cache; the "reference" side is the identical search on the
  reference engine (the discovered speedup is asserted bit-equal
  across engines every run).

With ``--service`` the *serving* trajectory is measured instead (and
written to ``BENCH_service.json``), driving a live in-process
:class:`~repro.service.app.PlanningService` over HTTP:

* ``service_hot_cache_*`` — steady-state latency of a request the LRU
  tier answers; the "reference" side is one cold ``plan_point`` with
  every process-wide cache cleared (what each CLI invocation used to
  pay);
* ``service_coalesced_burst_*`` — N synchronized duplicate requests on
  a never-seen digest; the "reference" side is N× the measured
  single-request cost (what the burst would cost un-coalesced), and
  ``cost_ratio`` records burst wall time over one request (~1 when
  coalescing works);
* ``service_chaos_*`` — tail latency under the deterministic quick
  chaos profile (slow workers, corrupted/torn cache writes, dropped
  connections) against a tiny-LRU service with a throwaway disk tier:
  ``compiled_s`` is the p99 of successful requests and
  ``availability`` the non-shed success rate;
* ``service_fleet_kill_p99_*`` — tail latency + availability of a
  request stream over a 2-shard fleet while ``kill-shard`` takes one
  shard down mid-stream (the router fails over, the supervisor
  restarts the victim: ``restarts`` records the heal);
* ``service_fleet_scaleout_*`` — closed-loop throughput of
  compute-bound fresh-digest plans at fleet sizes 1/2(/4);
  ``efficiency_nN`` is the achieved fraction of the ideal N×.

Every entry records reference seconds, compiled seconds and the
speedup (for the two sweep-era classes, "reference" means the
unbatched/uncached equivalent path, not the reference *engine*).  A ``calibration_s`` scalar (a fixed pure-Python workload)
makes the numbers comparable across machines: regression checks use
times *normalized by calibration*, so a slower CI box does not fail
the perf-smoke job.

Usage::

    PYTHONPATH=src python tools/bench_trajectory.py             # full + quick, write BENCH_sim.json
    PYTHONPATH=src python tools/bench_trajectory.py --quick     # quick classes only, no write
    PYTHONPATH=src python tools/bench_trajectory.py --quick --check BENCH_sim.json
    PYTHONPATH=src python tools/bench_trajectory.py --service   # write BENCH_service.json
    PYTHONPATH=src python tools/bench_trajectory.py --service --quick --check BENCH_service.json

``--check`` exits non-zero when any current quick entry is more than
``--threshold`` (default 2×) slower than the committed baseline after
calibration normalization — the CI perf-smoke gate (both baselines).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.settings import (  # noqa: E402
    ONE_F_ONE_B_METHODS,
    VHALF_METHODS,
    model_for_1f1b,
    model_for_vhalf,
    parallel_for,
)

#: (name suffix, gpus, method or method tuple, model factory)
PANELS = [
    ("tab5_8gpu", 8, "vocab-1", ONE_F_ONE_B_METHODS, model_for_1f1b),
    ("tab6_16gpu", 16, "vhalf-vocab-1", VHALF_METHODS, model_for_vhalf),
]

#: Microbatch counts per trajectory class.
MICROBATCHES = {"full": 128, "quick": 32}
#: Runtime bindings per execute_many batch.
BINDINGS = 16
#: Monte Carlo samples of the scenario-robustness classes.
MC_SAMPLES = 256
#: Cluster scenario priced by the scenario-robustness classes.
MC_SCENARIO = "slow-node"
#: Memory-budget grid (GiB) of the sweep-throughput classes — one
#: schedule structure, eight re-rankings.
SWEEP_BUDGETS = (24.0, 32.0, 40.0, 48.0, 56.0, 64.0, 72.0, 80.0)
#: Best-of rounds: the quick class gates CI on millisecond timings, so
#: it takes more rounds to suppress shared-runner noise.
ROUNDS = {"full": 3, "quick": 5}
#: Oracle-evaluation budget of the optimize_* classes — small enough
#: to bench, large enough that the seeded greedy search still finds
#: its token-split improvement on both panels.
OPTIMIZE_BUDGET = 16
#: Seed of the optimize_* classes (the search is bit-reproducible).
OPTIMIZE_SEED = 0
#: Synchronized duplicate requests of the service coalesced-burst class.
SERVICE_DUPLICATES = 8
#: Sequential hot requests averaged per service hot-cache round.
SERVICE_HOT_REQUESTS = 25
#: Requests of the service chaos class (p99 wants a real sample).
SERVICE_CHAOS_REQUESTS = 40
#: Fault profile of the service chaos class: the quick subset of the
#: loadtest's chaos spec (no worker kill — the class runs a thread
#: executor and measures serving cost, not pool resurrection).
SERVICE_CHAOS_FAULTS = (
    "slow-worker:rate=0.25,seed=5,delay_ms=20;"
    "corrupt-cache-entry:rate=0.9,seed=7;"
    "torn-cache-write:rate=0.4,seed=11;"
    "drop-connection-mid-response:rate=0.15,seed=3"
)
#: Requests of the fleet kill class (p99 + availability want a sample
#: that spans the deliberate shard kill and the restart).
SERVICE_FLEET_REQUESTS = 40
#: Fault profile of the fleet kill class: SIGKILL one shard at the 3rd
#: supervisor monitor tick, mid-request-stream.
SERVICE_FLEET_KILL_FAULTS = "kill-shard:rate=1,after=2,limit=1"
#: Closed-loop workers of the scale-out class.
SERVICE_FLEET_CONCURRENCY = 4
#: Total fresh-digest (compute-bound) requests per fleet size of the
#: scale-out class.
SERVICE_FLEET_SCALEOUT_REQUESTS = 24
#: Fleet sizes whose throughput the scale-out class compares.
SERVICE_FLEET_SIZES = {"full": (1, 2, 4), "quick": (1, 2)}


def best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibration() -> float:
    """Seconds for a fixed pure-Python workload (machine-speed proxy)."""

    def workload() -> int:
        total = 0
        for i in range(200_000):
            total += i % 7
        return total

    return best_of(workload, rounds=3)


class _ScaledRuntime:
    """Deterministic runtime variations for the execute_many batch."""

    def __init__(self, inner, factor: float):
        self.inner = inner
        self.factor = factor

    def pass_duration(self, p):
        return self.factor * self.inner.pass_duration(p)

    def collective_duration(self, kind):
        return self.factor * self.inner.collective_duration(kind)

    def p2p_duration(self, src, dst):
        return self.factor * self.inner.p2p_duration(src, dst)


def clear_all_planner_caches() -> None:
    """Reset every process-wide cache the planner stack keeps."""
    from repro.harness.experiments import clear_structural_caches
    from repro.planner.estimate import clear_probe_cache
    from repro.planner.planner import clear_plan_cache

    clear_plan_cache()
    clear_probe_cache()
    clear_structural_caches()


def engine(name: str):
    """Context manager pinning ``REPRO_SIM_ENGINE``."""

    class _Engine:
        def __enter__(self):
            self._old = os.environ.get("REPRO_SIM_ENGINE")
            os.environ["REPRO_SIM_ENGINE"] = name

        def __exit__(self, *exc):
            if self._old is None:
                os.environ.pop("REPRO_SIM_ENGINE", None)
            else:
                os.environ["REPRO_SIM_ENGINE"] = self._old

    return _Engine()


def measure_class(
    klass: str, with_reference: bool = True
) -> dict[str, dict[str, float]]:
    """All trajectory entries for one class ('full' or 'quick').

    ``with_reference=False`` (the ``--check`` gate) times only the
    compiled engine — the regression check never reads the reference
    numbers, and the reference runs dominate wall-clock.
    """
    from repro.harness.experiments import generate_method_schedule
    from repro.planner.cache import PlanCache
    from repro.planner.planner import PlannerConstraints, plan
    from repro.sim import RuntimeModel, SimulationSetup, compile_schedule
    from repro.sim.reference_executor import (
        reference_execute_schedule,
        reference_execute_schedule_dataflow,
    )

    m = MICROBATCHES[klass]
    rounds = ROUNDS[klass]
    entries: dict[str, dict[str, float]] = {}

    def add(name: str, reference_s: float | None, compiled_s: float, **extra) -> None:
        entries[name] = {"compiled_s": compiled_s, **extra}
        if reference_s is None:
            print(f"  {name:22s} compiled {compiled_s * 1e3:9.2f} ms")
            return
        entries[name]["reference_s"] = reference_s
        entries[name]["speedup"] = (
            reference_s / compiled_s if compiled_s > 0 else 0.0
        )
        print(
            f"  {name:22s} reference {reference_s * 1e3:9.2f} ms   "
            f"compiled {compiled_s * 1e3:9.2f} ms   "
            f"{entries[name]['speedup']:5.1f}x"
        )

    for tag, gpus, method, methods, model_for in PANELS:
        model = model_for(gpus, 2048, 256 * 1024)
        parallel = parallel_for(gpus, num_microbatches=m)
        setup = SimulationSetup(model, parallel)
        schedule = generate_method_schedule(method, setup)
        runtime = RuntimeModel(setup, schedule)
        t0 = time.perf_counter()
        graph = compile_schedule(schedule, runtime)
        compile_s = time.perf_counter() - t0
        mode = "zero-bubble" if schedule.has_weight_passes else "strict"

        add(
            f"execute_{tag}",
            best_of(lambda: reference_execute_schedule(schedule, runtime), rounds)
            if with_reference
            else None,
            best_of(graph.replay, rounds),
            compile_s=compile_s,
        )
        add(
            f"dataflow_{tag}",
            best_of(
                lambda: reference_execute_schedule_dataflow(
                    schedule, runtime, lookahead=64, mode=mode
                ),
                rounds,
            )
            if with_reference
            else None,
            best_of(
                lambda: graph.execute_dataflow(lookahead=64, mode=mode), rounds
            ),
        )

        constraints = PlannerConstraints(methods=methods)

        def run_plan() -> None:
            plan(model, parallel, constraints, cache=PlanCache())

        plan_reference = None
        if with_reference:
            with engine("reference"):
                plan_reference = best_of(run_plan, rounds)
        with engine("compiled"):
            plan_compiled = best_of(run_plan, rounds)
        add(f"plan_{tag}", plan_reference, plan_compiled)

        # Trust-gated verification: full verification (simulate every
        # feasible candidate) under the analytic model vs the same
        # search under the committed calibrated profile, whose stored
        # error bounds prove most candidates out of the simulated set.
        # Unlike the panel-restricted plan_* class this searches the
        # full 8-family space (a default plan() call): gating earns its
        # keep on families whose estimates are provably apart, while
        # near-ties stay simulated.  Both sides run the compiled engine
        # on a cold per-call cache; the "reference" is the full-verify
        # wall time the shrink saves, and top-1 identity is asserted,
        # not assumed.
        full_constraints = PlannerConstraints(simulate_top_k=None)
        gated_constraints = PlannerConstraints(
            simulate_top_k=None, cost_model="a100-sim"
        )

        def full_verify():
            return plan(model, parallel, full_constraints, cache=PlanCache())

        def gated_verify():
            return plan(model, parallel, gated_constraints, cache=PlanCache())

        with engine("compiled"):
            full_plans = full_verify()
            gated_plans = gated_verify()
            assert full_plans.best.method == gated_plans.best.method, (
                f"trust-gated top-1 {gated_plans.best.method} != "
                f"full-verify top-1 {full_plans.best.method}"
            )
            full_verify_s = (
                best_of(full_verify, rounds) if with_reference else None
            )
            gated_s = best_of(gated_verify, rounds)
        add(
            f"calibrated_plan_{tag}",
            full_verify_s,
            gated_s,
            cost_model="a100-sim",
            top1_match=1.0,
            simulated_full=sum(c.simulated for c in full_plans.ranked),
            simulated_gated=sum(c.simulated for c in gated_plans.ranked),
            trust_skipped=len(gated_plans.trust_skipped),
        )

        # Batched replay: one structure, BINDINGS runtime bindings.  The
        # reference side loops the pre-batch planner behaviour (a fresh
        # compile + execute per binding); rebind_loop_s additionally
        # records the strongest manual alternative (compile once, rebind
        # + replay per binding) for transparency.
        runtimes = [
            _ScaledRuntime(runtime, 0.5 + 0.1 * i) for i in range(BINDINGS)
        ]

        def compile_loop_bindings() -> None:
            for scaled in runtimes:
                compile_schedule(schedule, scaled).execute()

        def rebind_loop_bindings() -> None:
            for scaled in runtimes:
                graph.rebind(scaled).replay()

        def batch_bindings() -> None:
            graph.execute_bindings(runtimes)

        add(
            f"execute_many_{tag}",
            best_of(compile_loop_bindings, rounds) if with_reference else None,
            best_of(batch_bindings, rounds),
            bindings=BINDINGS,
            rebind_loop_s=best_of(rebind_loop_bindings, rounds),
        )

        # Scenario robustness: K=256 seeded-jitter samples of one
        # scenario-bound structure.  The "reference" side sweeps the
        # same perturbed duration/lag matrices one binding at a time
        # (the natural pre-batch Monte Carlo loop); the compiled side
        # is one execute_many_summary pass.
        from repro.scenarios import get_scenario, perturbed_rows

        scenario = get_scenario(MC_SCENARIO)
        scenario_setup = scenario.setup_for(setup)
        scenario_schedule = generate_method_schedule(method, scenario_setup)
        scenario_graph = compile_schedule(
            scenario_schedule,
            scenario.runtime_for(scenario_setup, scenario_schedule),
        )
        dur_rows, lag_rows = perturbed_rows(
            scenario_graph, scenario, MC_SAMPLES, seed=0
        )

        def per_binding_robustness() -> None:
            for k in range(MC_SAMPLES):
                scenario_graph.execute_many([dur_rows[k]], [lag_rows[k]])

        def batched_robustness() -> None:
            scenario_graph.execute_many_summary(dur_rows, lag_rows)

        add(
            f"scenario_robustness_{tag}",
            best_of(per_binding_robustness, rounds) if with_reference else None,
            best_of(batched_robustness, rounds),
            samples=MC_SAMPLES,
            scenario=MC_SCENARIO,
        )

        # Incremental what-if: one single-device perturbation (the last
        # device 1.25x slower) answered from the resident checkpoint by
        # the adaptive delta path, vs the reference engine fully
        # re-relaxing the perturbed binding from scratch.  resweep_s
        # additionally records the strongest compiled alternative (a
        # fresh rebind clone re-sweeping the perturbed row, no resident
        # state); tail_s records a *transient* variant of the same
        # straggler — only the last two microbatches slow down — whose
        # narrow cone stays on the incremental walk.
        from repro.scenarios.cluster import ScenarioRuntime
        from repro.sim.compiled import Perturbation

        whatif_device, whatif_factor = gpus - 1, 1.25
        whatif_pert = graph.device_perturbation(whatif_device, whatif_factor)
        whatif_row = list(graph.durations)
        for node, value in whatif_pert.durations:
            whatif_row[node] = value
        whatif_runtime = ScenarioRuntime(
            runtime,
            tuple(
                1 / whatif_factor if d == whatif_device else 1.0
                for d in range(gpus)
            ),
        )
        full_graph = graph.rebind(runtime)
        graph.checkpoint()
        tail_pert = Perturbation.from_maps(durations={
            node: whatif_factor * graph.durations[node]
            for node in graph.device_nodes[whatif_device]
            if graph.node_pass[node].microbatch >= m - 2
        })

        def full_whatif() -> None:
            reference_execute_schedule(schedule, whatif_runtime)

        def resweep_whatif() -> None:
            full_graph.execute_many_summary([whatif_row])

        def delta_whatif() -> None:
            graph.execute_delta_summary(whatif_pert)

        def tail_whatif() -> None:
            graph.execute_delta_summary(tail_pert)

        add(
            f"incremental_whatif_{tag}",
            best_of(full_whatif, rounds) if with_reference else None,
            best_of(delta_whatif, rounds),
            device=whatif_device,
            factor=whatif_factor,
            support=whatif_pert.support,
            resweep_s=best_of(resweep_whatif, rounds),
            tail_s=best_of(tail_whatif, rounds),
            tail_support=tail_pert.support,
        )

        # Sweep throughput: an 8-budget grid over one schedule structure.
        from repro.planner.sweep import grid as make_grid
        from repro.planner.sweep import plan_point, sweep as run_sweep

        points = make_grid(
            devices=(gpus,),
            vocab_sizes=(256 * 1024,),
            microbatches=(m,),
            memory_budgets_gib=SWEEP_BUDGETS,
        )
        # The sweep plans model_for_devices shapes (not the per-panel
        # Table 1/2 models), so search the full family space and let
        # structural rejection filter per device count.
        sweep_constraints = PlannerConstraints()

        def pointwise() -> None:
            # The pre-structural-cache equivalent: every point pays
            # schedule generation, probing, compilation and simulation
            # from scratch.
            for point in points:
                clear_all_planner_caches()
                plan_point(point, sweep_constraints)

        def structured_sweep() -> None:
            clear_all_planner_caches()
            run_sweep(points, sweep_constraints, executor="serial")

        add(
            f"sweep_grid_{tag}",
            best_of(pointwise, rounds) if with_reference else None,
            best_of(structured_sweep, rounds),
            points=len(points),
        )

        # Rewrite-based optimizer search: one fixed-seed, budget-bounded
        # optimize() call on a cold cache — the full-verify named-family
        # baseline plus OPTIMIZE_BUDGET oracle evaluations (what the CLI
        # `optimize` subcommand and /v1/optimize pay on a cache miss).
        # The engines are bit-identical by construction, so "reference"
        # is the same search on the reference engine; the discovered
        # speedup is asserted identical across both every run.
        from repro.optimize import optimize as optimize_search

        def run_optimize():
            return optimize_search(
                model, parallel, cache=PlanCache(),
                seed=OPTIMIZE_SEED, budget=OPTIMIZE_BUDGET,
            )

        optimize_reference = None
        if with_reference:
            with engine("reference"):
                reference_plan = run_optimize()
                optimize_reference = best_of(run_optimize, rounds)
        with engine("compiled"):
            optimized = run_optimize()
            optimize_compiled = best_of(run_optimize, rounds)
        if with_reference:
            assert reference_plan.speedup == optimized.speedup, (
                f"optimize engine divergence: reference speedup "
                f"{reference_plan.speedup} != compiled {optimized.speedup}"
            )
        add(
            f"optimize_{tag}",
            optimize_reference,
            optimize_compiled,
            budget=OPTIMIZE_BUDGET,
            seed=OPTIMIZE_SEED,
            evaluations=optimized.evaluations,
            improved=float(optimized.improved),
            search_speedup=optimized.speedup,
        )
        clear_all_planner_caches()

    return entries


def measure_service_class(
    klass: str, with_reference: bool = True
) -> dict[str, dict[str, float]]:
    """Service trajectory entries for one class ('full' or 'quick').

    Drives a live in-process service over real HTTP (thread executor —
    the classes measure the serving tiers, not pool spawn noise).  The
    hot-cache "reference" is a cold ``plan_point`` with all process
    caches cleared: the per-invocation price of the pre-service CLI.
    """
    sys.path.insert(0, str(REPO / "tools"))
    import loadtest_service as lt

    from repro.planner.planner import PlannerConstraints
    from repro.planner.sweep import SweepPoint, plan_point
    from repro.service import PlanningService, ServiceThread

    m = MICROBATCHES[klass]
    rounds = ROUNDS[klass]
    entries: dict[str, dict[str, float]] = {}
    devices, vocab = 8, 256 * 1024
    tag = "tab5_8gpu"

    def add(name: str, reference_s: float | None, compiled_s: float, **extra) -> None:
        entries[name] = {"compiled_s": compiled_s, **extra}
        if reference_s is None:
            print(f"  {name:28s} compiled {compiled_s * 1e3:9.2f} ms")
            return
        entries[name]["reference_s"] = reference_s
        entries[name]["speedup"] = (
            reference_s / compiled_s if compiled_s > 0 else 0.0
        )
        print(
            f"  {name:28s} reference {reference_s * 1e3:9.2f} ms   "
            f"compiled {compiled_s * 1e3:9.2f} ms   "
            f"{entries[name]['speedup']:5.1f}x"
        )

    point = SweepPoint(devices, vocab, 2048, m)
    constraints = PlannerConstraints()

    def cold_plan() -> None:
        clear_all_planner_caches()
        plan_point(point, constraints)

    cold_s = best_of(cold_plan, rounds) if with_reference else None
    clear_all_planner_caches()

    service = PlanningService(port=0, executor="thread", lru_size=512)
    with ServiceThread(service) as live:
        payload = {"devices": devices, "vocab_size": vocab, "microbatches": m}

        def request(body: dict) -> None:
            status, response = lt.request_json(
                live.host, live.port, "POST", "/v1/plan", body
            )
            assert status == 200, response

        request(payload)  # prime the LRU

        def hot_requests() -> None:
            for _ in range(SERVICE_HOT_REQUESTS):
                request(payload)

        hot_s = best_of(hot_requests, rounds) / SERVICE_HOT_REQUESTS
        add(
            f"service_hot_cache_{tag}", cold_s, hot_s,
            requests=SERVICE_HOT_REQUESTS,
        )

        # Fresh digests that still cost a real plan: each distinct
        # pass_overhead binding forces fresh estimate/metrics entries
        # (a top-k re-simulation) while schedule structures and
        # compiled graphs stay warm — the steady-state price of one
        # never-seen query, not just an LRU-miss re-rank.
        overheads = iter(1e-12 * (i + 1) for i in range(8 * max(rounds, 1) * 4))

        def fresh_payload() -> dict:
            return dict(payload, pass_overhead=next(overheads))

        def single_request() -> None:
            request(fresh_payload())

        single_s = best_of(single_request, rounds)

        def burst_round() -> float:
            latencies, bodies, errors = lt.run_duplicate_burst(
                live.host, live.port, fresh_payload(), SERVICE_DUPLICATES
            )
            assert not errors and len(bodies) == 1, (errors, len(bodies))
            return max(latencies)

        burst_s = min(burst_round() for _ in range(rounds))
        add(
            f"service_coalesced_burst_{tag}",
            SERVICE_DUPLICATES * single_s if with_reference else None,
            burst_s,
            duplicates=SERVICE_DUPLICATES,
            single_request_s=single_s,
            cost_ratio=burst_s / single_s if single_s > 0 else 0.0,
        )

    # Chaos class: tail latency + availability while the deterministic
    # quick fault profile is live — slow workers, corrupted and torn
    # cache writes, dropped connections.  A fresh service with a tiny
    # LRU over a throwaway disk tier, so repeats are forced through the
    # checksum/quarantine/recompute path; ``compiled_s`` is the p99 of
    # successful requests (the perf-smoke gate), ``availability`` the
    # non-shed success rate (deliberately < 1 under dropped
    # connections; see tools/loadtest_service.py --chaos for the full
    # contract run).
    import http.client
    import tempfile

    from repro import faultinject

    with tempfile.TemporaryDirectory() as chaos_dir:
        faultinject.install(SERVICE_CHAOS_FAULTS)
        try:
            chaos_service = PlanningService(
                port=0, executor="thread", lru_size=2, cache_dir=chaos_dir,
            )
            with ServiceThread(chaos_service) as live:
                latencies: list[float] = []
                attempts = shed = failed = 0
                for i in range(SERVICE_CHAOS_REQUESTS):
                    body = dict(payload, microbatches=m + (i % 6))
                    attempts += 1
                    start = time.perf_counter()
                    try:
                        status, _response = lt.request_json(
                            live.host, live.port, "POST", "/v1/plan", body
                        )
                    except (
                        OSError,
                        http.client.HTTPException,
                        json.JSONDecodeError,
                    ):
                        failed += 1  # a deliberately dropped connection
                        continue
                    if status == 200:
                        latencies.append(time.perf_counter() - start)
                    elif status == 429:
                        shed += 1
                    else:
                        failed += 1
                availability = (
                    len(latencies) / (attempts - shed)
                    if attempts > shed
                    else 0.0
                )
                add(
                    f"service_chaos_{tag}",
                    None,
                    lt.percentile(latencies, 99.0),
                    availability=availability,
                    requests=attempts,
                    shed=shed,
                    failed=failed,
                )
        finally:
            faultinject.reset()

    # Fleet kill class: p99 + availability of a sequential request
    # stream over a 2-shard fleet while ``kill-shard`` SIGKILLs one
    # shard mid-stream — the price of failover, not the price of an
    # outage.  The stream must keep answering (the router fails the
    # dead shard's keys over to its ring successor) while the
    # supervisor restarts the victim; ``restarts`` records that the
    # fleet healed before shutdown.
    import tempfile as _tempfile
    import threading

    with _tempfile.TemporaryDirectory() as fleet_dir:
        fleet = lt.spawn_server(
            executor="thread",
            cache_dir=fleet_dir,
            faults=SERVICE_FLEET_KILL_FAULTS,
            extra_args=[
                "--fleet", "2",
                "--probe-interval", "0.15",
                "--restart-backoff", "0.2",
                "--hedge-max-ms", "400",
            ],
        )
        try:
            kill_latencies: list[float] = []
            attempts = failed = 0
            for i in range(SERVICE_FLEET_REQUESTS):
                body = dict(payload, microbatches=m + (i % 6))
                attempts += 1
                start = time.perf_counter()
                try:
                    status, _response = lt.request_json(
                        fleet.host, fleet.port, "POST", "/v1/plan", body
                    )
                except (
                    OSError,
                    http.client.HTTPException,
                    json.JSONDecodeError,
                ):
                    failed += 1
                    continue
                if status == 200:
                    kill_latencies.append(time.perf_counter() - start)
                else:
                    failed += 1
            restarts = 0
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                status, stats = lt.request_json(
                    fleet.host, fleet.port, "GET", "/stats"
                )
                shards = stats.get("fleet", {}).get("shards", {})
                restarts = sum(s.get("restarts", 0) for s in shards.values())
                if restarts >= 1 and all(
                    s.get("state") == "up" for s in shards.values()
                ):
                    break
                time.sleep(0.2)
            add(
                f"service_fleet_kill_p99_{tag}",
                None,
                lt.percentile(kill_latencies, 99.0),
                availability=(
                    len(kill_latencies) / attempts if attempts else 0.0
                ),
                requests=attempts,
                failed=failed,
                restarts=restarts,
                shards=2,
            )
        finally:
            code = fleet.shutdown()
            assert code == 0, f"fleet exited {code}"

    # Fleet scale-out class: closed-loop throughput of compute-bound
    # fresh-digest plans (distinct pass_overhead bindings — every
    # request is a real top-k re-simulation) at fleet sizes 1/2(/4).
    # Shards are separate processes, so efficiency_nN records how much
    # of the ideal N× the consistent-hash fan-out actually delivers.
    fresh = iter(
        1e-12 * (i + 1)
        for i in range(10 * SERVICE_FLEET_SCALEOUT_REQUESTS * 8)
    )

    def scaleout_rps(n_shards: int) -> float:
        per_worker = SERVICE_FLEET_SCALEOUT_REQUESTS // SERVICE_FLEET_CONCURRENCY
        bodies = [
            dict(payload, pass_overhead=next(fresh))
            for _ in range(per_worker * SERVICE_FLEET_CONCURRENCY)
        ]
        with _tempfile.TemporaryDirectory() as cache_dir:
            handle = lt.spawn_server(
                executor="thread",
                cache_dir=cache_dir,
                extra_args=(
                    ["--fleet", str(n_shards)] if n_shards > 1 else []
                ),
            )
            errors: list[str] = []

            def worker(index: int) -> None:
                for slot in range(per_worker):
                    body = bodies[index * per_worker + slot]
                    status, response = lt.request_json(
                        handle.host, handle.port, "POST", "/v1/plan", body
                    )
                    if status != 200:
                        errors.append(f"HTTP {status}: {response}")

            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(SERVICE_FLEET_CONCURRENCY)
            ]
            try:
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - start
            finally:
                code = handle.shutdown()
            assert code == 0, f"fleet of {n_shards} exited {code}"
            assert not errors, errors[:3]
            return len(bodies) / wall

    rps = {n: scaleout_rps(n) for n in SERVICE_FLEET_SIZES[klass]}
    scaleout_extra = {
        f"throughput_n{n}_rps": value for n, value in rps.items()
    }
    scaleout_extra.update({
        f"efficiency_n{n}": (rps[n] / rps[1]) / n
        for n in rps
        if n > 1 and rps[1] > 0
    })
    add(
        f"service_fleet_scaleout_{tag}",
        None,
        1.0 / rps[2] if rps.get(2) else 0.0,
        concurrency=SERVICE_FLEET_CONCURRENCY,
        requests=SERVICE_FLEET_SCALEOUT_REQUESTS,
        **scaleout_extra,
    )
    clear_all_planner_caches()
    return entries


def check(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Normalized-regression failures of ``current`` vs ``baseline``."""
    problems = []
    base_cal = baseline.get("calibration_s")
    base_entries = baseline.get("quick", {})
    cur_cal = current["calibration_s"]
    if not base_cal or not base_entries:
        return ["baseline has no quick entries/calibration to check against"]
    for name, entry in current["quick"].items():
        base = base_entries.get(name)
        if base is None:
            continue
        cur_norm = entry["compiled_s"] / cur_cal
        base_norm = base["compiled_s"] / base_cal
        ratio = cur_norm / base_norm if base_norm > 0 else float("inf")
        status = "OK" if ratio <= threshold else "REGRESSION"
        print(
            f"  {name:22s} normalized {cur_norm:8.2f} vs baseline "
            f"{base_norm:8.2f}  ({ratio:4.2f}x)  {status}"
        )
        if ratio > threshold:
            problems.append(
                f"{name}: compiled path {ratio:.2f}x slower than baseline "
                f"(threshold {threshold:.1f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="measure only the quick class (smaller m); skip writing output",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="measure the planning-service classes instead "
        "(writes/checks BENCH_service.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed BENCH_sim.json; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="allowed normalized slowdown vs baseline (default 2.0x)",
    )
    parser.add_argument(
        "--output", default=None,
        help="where to write the trajectory JSON (full runs only; "
        "default BENCH_sim.json, or BENCH_service.json with --service)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = str(
            REPO / ("BENCH_service.json" if args.service else "BENCH_sim.json")
        )
    measure = measure_service_class if args.service else measure_class

    result: dict = {
        "schema": 1,
        "python": platform.python_version(),
        "microbatches": MICROBATCHES,
        "calibration_s": calibration(),
    }
    with_reference = args.check is None
    print(f"calibration: {result['calibration_s'] * 1e3:.2f} ms")
    print(f"quick class (m={MICROBATCHES['quick']}):")
    result["quick"] = measure("quick", with_reference=with_reference)
    if not args.quick:
        print(f"full class (m={MICROBATCHES['full']}):")
        result["full"] = measure("full", with_reference=with_reference)

    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text())
        print(f"checking against {args.check} (threshold {args.threshold}x):")
        problems = check(result, baseline, args.threshold)
        if problems:
            print("\n".join(problems))
            return 1
        print("perf-smoke OK: no regression beyond threshold")
        return 0

    if not args.quick:
        Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
