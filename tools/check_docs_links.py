#!/usr/bin/env python
"""Validate the user documentation: links, files, CLI usage, API kwargs.

Checks, over ``README.md`` and every ``docs/*.md``:

* relative markdown links ``[text](target)`` resolve to files that
  exist (anchors are stripped; http(s)/mailto links are skipped);
* backticked file references like ``benchmarks/bench_planner.py``
  point at real files (paths are also tried relative to ``src/repro/``
  so module references in docs/architecture.md resolve);
* every ``repro-experiments <subcommand>`` shown in the docs names a
  real subcommand, and every ``--option`` on the same line exists on
  that subcommand — both introspected from the live argparse parser
  (:func:`repro.harness.cli.build_parser`), so the docs cannot drift
  from the CLI;
* every fenced ``python`` code block parses, and every keyword
  argument passed to a known public callable (``plan``, ``sweep``,
  ``grid``, ``ClusterScenario``, ``RobustnessObjective``, …) exists in
  that callable's real signature — so documented kwargs cannot drift
  from the API;
* every backticked HTTP endpoint (``POST /v1/plan``) names a live
  route of the planning service — introspected from
  :data:`repro.service.ROUTES` — and, conversely, every served route
  is documented in ``docs/service.md``.

Exit code 0 when clean, 1 with a list of problems otherwise.  Run
from the repository root (CI does)::

    PYTHONPATH=src python tools/check_docs_links.py
"""

from __future__ import annotations

import argparse
import ast
import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+\.(?:py|md|toml|yml))`")
# The option tail stops at a backtick so inline-code mentions do not
# leak surrounding prose (or table-cell neighbours) into the scan.
CLI_COMMAND = re.compile(r"repro-experiments\s+([a-z0-9-]+)([^`\n]*)")
CLI_OPTION = re.compile(r"(--[a-z][a-z0-9-]*)")
PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# Backticked endpoint mentions like `POST /v1/plan` or `GET /healthz`.
HTTP_ENDPOINT = re.compile(r"`(GET|POST|PUT|DELETE|PATCH)\s+(/[^\s`]*)`")


def doc_files() -> list[Path]:
    """README plus every markdown page under docs/."""
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def resolves(target: str, base: Path, allow_module_paths: bool = False) -> bool:
    """Whether a referenced path exists (docs-relative or repo-relative).

    ``allow_module_paths`` additionally tries ``src/repro/<target>`` —
    only for backticked module references; markdown *links* must point
    at real files so they do not 404 when rendered.
    """
    candidates = [base.parent / target, REPO / target]
    if allow_module_paths:
        candidates.append(REPO / "src" / "repro" / target)
    return any(c.exists() for c in candidates)


def cli_surface() -> dict[str, set[str]]:
    """Subcommand → option strings, introspected from the live parser."""
    from repro.harness.cli import build_parser

    surface: dict[str, set[str]] = {}
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                options: set[str] = set()
                for sub_action in subparser._actions:
                    options.update(sub_action.option_strings)
                surface[name] = options
    return surface


def service_routes() -> set[tuple[str, str]]:
    """(method, path) pairs the planning service actually serves.

    The union of the single-process route table and the fleet router's
    own control routes (``serve --fleet N``) — both documented in
    ``docs/service.md``.
    """
    from repro.service import FLEET_ROUTES, ROUTES

    return {(route.method, route.path) for route in ROUTES + FLEET_ROUTES}


def check_route_coverage(routes: set[tuple[str, str]], text: str) -> list[str]:
    """Routes the service serves but ``docs/service.md`` never mentions."""
    documented = {
        (match.group(1), match.group(2))
        for match in HTTP_ENDPOINT.finditer(text)
    }
    return [
        f"docs/service.md: served route `{method} {path}` is undocumented"
        for method, path in sorted(routes - documented)
    ]


def known_callables() -> dict[str, object]:
    """Public callables whose documented kwargs must stay real.

    Every name exported by :mod:`repro.planner` and
    :mod:`repro.scenarios`, plus the harness/sim/config entry points
    docs quote.  Documented calls to *other* names are not checked —
    this is a drift detector for the public planning/scenario API, not
    a type checker.
    """
    import repro
    import repro.planner
    import repro.scenarios
    from repro.harness import experiments
    from repro.sim import RuntimeModel, SimulationSetup, compile_schedule

    known: dict[str, object] = {}
    for module in (repro.planner, repro.scenarios):
        for name in module.__all__:
            value = getattr(module, name)
            if callable(value):
                known[name] = value
    for value in (
        experiments.run_method,
        experiments.run_method_bindings,
        experiments.build_schedule,
        experiments.generate_method_schedule,
        repro.ModelConfig,
        repro.ParallelConfig,
        RuntimeModel,
        SimulationSetup,
        compile_schedule,
    ):
        known[value.__name__] = value
    return known


def _signature_params(value: object) -> tuple[set[str], bool]:
    """Keyword-addressable parameter names and whether **kwargs exist."""
    try:
        signature = inspect.signature(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return set(), True
    names: set[str] = set()
    var_kwargs = False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            var_kwargs = True
        elif param.kind is not inspect.Parameter.VAR_POSITIONAL:
            names.add(param.name)
    return names, var_kwargs


def check_python_block(
    code: str, rel: str, known: dict[str, object]
) -> list[str]:
    """Problems in one fenced python block (parse + kwarg existence)."""
    try:
        tree = ast.parse(code)
    except SyntaxError as error:
        return [f"{rel}: python code block does not parse -> {error.msg}"]
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
            continue
        target = known.get(node.func.id)
        if target is None:
            continue
        params, var_kwargs = _signature_params(target)
        if var_kwargs:
            continue
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg not in params:
                problems.append(
                    f"{rel}: unknown kwarg {keyword.arg!r} in documented "
                    f"call {node.func.id}(...) — real signature has "
                    f"{sorted(params)}"
                )
    return problems


def check_file(
    path: Path,
    cli: dict[str, set[str]],
    known: dict[str, object],
    routes: set[tuple[str, str]] | None = None,
) -> list[str]:
    """All problems found in one markdown file.

    ``path`` is usually under the repo, but any readable markdown file
    works (the tests point this at synthetic pages in a tmp dir).
    """
    text = path.read_text()
    try:
        rel = str(path.relative_to(REPO))
    except ValueError:
        rel = path.name
    problems = []
    for match in LINK.finditer(text):
        target = match.group(1).split("#")[0].strip()
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        if not resolves(target, path):
            problems.append(f"{rel}: broken link -> {target}")
    for match in BACKTICK_PATH.finditer(text):
        target = match.group(1)
        if not resolves(target, path, allow_module_paths=True):
            problems.append(f"{rel}: missing file reference -> {target}")
    for match in CLI_COMMAND.finditer(text):
        command = match.group(1)
        if command not in cli:
            problems.append(
                f"{rel}: unknown repro-experiments subcommand -> {command}"
            )
            continue
        for option in CLI_OPTION.findall(match.group(2) or ""):
            if option not in cli[command]:
                problems.append(
                    f"{rel}: repro-experiments {command} has no option "
                    f"{option}"
                )
    if routes is not None:
        for match in HTTP_ENDPOINT.finditer(text):
            endpoint = (match.group(1), match.group(2))
            if endpoint not in routes:
                problems.append(
                    f"{rel}: documented endpoint `{endpoint[0]} "
                    f"{endpoint[1]}` is not in the service route table"
                )
    for match in PYTHON_FENCE.finditer(text):
        problems.extend(check_python_block(match.group(1), rel, known))
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    cli = cli_surface()
    known = known_callables()
    routes = service_routes()

    problems: list[str] = []
    files = doc_files()
    if len(files) < 2:
        problems.append("expected README.md plus docs/*.md pages")
    for path in files:
        problems.extend(check_file(path, cli, known, routes))
    service_page = REPO / "docs" / "service.md"
    if service_page.exists():
        problems.extend(
            check_route_coverage(routes, service_page.read_text())
        )
    else:
        problems.append("docs/service.md is missing (the service reference)")
    if problems:
        print("\n".join(problems))
        return 1
    print(f"docs check OK: {len(files)} files, no broken references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
