#!/usr/bin/env python
"""Validate the user documentation: links, file references, CLI commands.

Checks, over ``README.md`` and every ``docs/*.md``:

* relative markdown links ``[text](target)`` resolve to files that
  exist (anchors are stripped; http(s)/mailto links are skipped);
* backticked file references like ``benchmarks/bench_planner.py``
  point at real files (paths are also tried relative to ``src/repro/``
  so module references in docs/architecture.md resolve);
* every ``repro-experiments <subcommand>`` shown in a fenced code
  block or table names a real subcommand of :mod:`repro.harness.cli`.

Exit code 0 when clean, 1 with a list of problems otherwise.  Run
from the repository root (CI does)::

    PYTHONPATH=src python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+\.(?:py|md|toml|yml))`")
CLI_COMMAND = re.compile(r"repro-experiments\s+([a-z0-9-]+)")


def doc_files() -> list[Path]:
    """README plus every markdown page under docs/."""
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def resolves(target: str, base: Path, allow_module_paths: bool = False) -> bool:
    """Whether a referenced path exists (docs-relative or repo-relative).

    ``allow_module_paths`` additionally tries ``src/repro/<target>`` —
    only for backticked module references; markdown *links* must point
    at real files so they do not 404 when rendered.
    """
    candidates = [base.parent / target, REPO / target]
    if allow_module_paths:
        candidates.append(REPO / "src" / "repro" / target)
    return any(c.exists() for c in candidates)


def check_file(path: Path, subcommands: set[str]) -> list[str]:
    """All problems found in one markdown file."""
    text = path.read_text()
    rel = path.relative_to(REPO)
    problems = []
    for match in LINK.finditer(text):
        target = match.group(1).split("#")[0].strip()
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        if not resolves(target, path):
            problems.append(f"{rel}: broken link -> {target}")
    for match in BACKTICK_PATH.finditer(text):
        target = match.group(1)
        if not resolves(target, path, allow_module_paths=True):
            problems.append(f"{rel}: missing file reference -> {target}")
    for match in CLI_COMMAND.finditer(text):
        command = match.group(1)
        if command not in subcommands:
            problems.append(
                f"{rel}: unknown repro-experiments subcommand -> {command}"
            )
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.harness.cli import SUBCOMMANDS

    problems: list[str] = []
    files = doc_files()
    if len(files) < 2:
        problems.append("expected README.md plus docs/*.md pages")
    for path in files:
        problems.extend(check_file(path, set(SUBCOMMANDS)))
    if problems:
        print("\n".join(problems))
        return 1
    print(f"docs check OK: {len(files)} files, no broken references")
    return 0


if __name__ == "__main__":
    sys.exit(main())
